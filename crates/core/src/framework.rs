//! The PLS-guided local-search engines (Algorithm 1 and Algorithm 3) and the report
//! structure shared by the composed constructions.

use stst_graph::{Graph, Tree};
use stst_runtime::SchedulerKind;

use crate::potential::{CyclicalDecreasing, NestDecreasing};

/// How the composition engine maintains the label families across improvement
/// iterations.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Relabel {
    /// Repair labels incrementally on the dirty region of each loop-free switch (the
    /// paper's model: Lemmas 3.1, 4.1 and 7.1 charge repair per wave on the affected
    /// region).
    #[default]
    Incremental,
    /// Re-prove every label family from scratch after every switch. Retained as the
    /// reference mode for the differential oracles and the speedup benches.
    FromScratch,
}

/// Configuration of a composed construction run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EngineConfig {
    /// Seed for the arbitrary initial configuration and the daemon.
    pub seed: u64,
    /// Daemon used by the guarded-rule phases.
    pub scheduler: SchedulerKind,
    /// Step budget for the guarded-rule phases.
    pub max_steps: u64,
    /// Label maintenance mode of the improvement phase.
    pub relabel: Relabel,
    /// Worker threads for parallel wave execution (1 = fully sequential). Threaded
    /// through to the guarded-rule executor and to the engine's from-scratch reproof
    /// and verification waves; results are bit-identical at any value.
    pub threads: usize,
}

impl EngineConfig {
    /// Central daemon, generous step budget, incremental label maintenance.
    pub fn seeded(seed: u64) -> Self {
        EngineConfig {
            seed,
            scheduler: SchedulerKind::Central,
            max_steps: 5_000_000,
            relabel: Relabel::Incremental,
            threads: 1,
        }
    }

    /// Overrides the daemon.
    pub fn with_scheduler(mut self, scheduler: SchedulerKind) -> Self {
        self.scheduler = scheduler;
        self
    }

    /// Overrides the guarded-rule step budget.
    pub fn with_max_steps(mut self, max_steps: u64) -> Self {
        self.max_steps = max_steps;
        self
    }

    /// Overrides the label maintenance mode.
    pub fn with_relabel(mut self, relabel: Relabel) -> Self {
        self.relabel = relabel;
        self
    }

    /// Overrides the worker-thread count (clamped to ≥ 1).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig::seeded(0)
    }
}

/// Report of a composed silent self-stabilizing construction (MST, MDST, …).
#[derive(Clone, Debug)]
pub struct ConstructionReport {
    /// The stabilized spanning tree.
    pub tree: Tree,
    /// Total rounds: guarded-rule rounds of the tree-construction phase plus the round
    /// charges of every wave and switch of the improvement phase.
    pub total_rounds: u64,
    /// Rounds broken down by phase (interned labels, first-seen order).
    pub phase_rounds: Vec<(&'static str, u64)>,
    /// Per-node label records written across all labeling waves — the deterministic
    /// work unit compared between [`Relabel::Incremental`] and [`Relabel::FromScratch`].
    pub labels_written: u64,
    /// Number of edge swaps (or well-nested swap sequences) applied.
    pub improvements: usize,
    /// Maximum register size (bits per node) observed across all phases, including the
    /// labels maintained for silence.
    pub max_register_bits: usize,
    /// Whether the stabilized output satisfies the task's legality predicate.
    pub legal: bool,
}

impl ConstructionReport {
    /// Rounds charged to phases whose label contains `needle`.
    pub fn rounds_for(&self, needle: &str) -> u64 {
        self.phase_rounds
            .iter()
            .filter(|(l, _)| l.contains(needle))
            .map(|(_, r)| r)
            .sum()
    }
}

/// Statistics of a sequential local-search run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LocalSearchStats {
    /// Number of applied improvements.
    pub improvements: usize,
    /// Potential of the initial tree.
    pub initial_potential: u64,
    /// Potential of the final tree (zero on success).
    pub final_potential: u64,
    /// `true` iff the potential reached zero within the `φ_max` iteration budget.
    /// When `false`, the returned tree is the best one reached before the budget ran
    /// out — both search engines report exhaustion this way (the seed's `local_search`
    /// panicked while `nested_local_search` silently returned a non-converged tree).
    pub converged: bool,
}

/// Algorithm 1 (sequential reference): repeatedly apply the improving swap prescribed by
/// a cyclical-decreasing potential until the potential reaches zero, or until the
/// potential's own `φ_max` budget is exhausted (then `stats.converged` is `false` —
/// which for a genuinely cyclical-decreasing potential cannot happen).
pub fn local_search<P: CyclicalDecreasing>(
    graph: &Graph,
    initial: Tree,
    potential: &P,
) -> (Tree, LocalSearchStats) {
    let mut tree = initial;
    let mut stats = LocalSearchStats {
        initial_potential: potential.value(graph, &tree),
        ..LocalSearchStats::default()
    };
    let budget = potential.max_value(graph).saturating_add(8);
    for _ in 0..=budget {
        match potential.improving_swap(graph, &tree) {
            None => {
                stats.converged = true;
                break;
            }
            Some((e, f)) => {
                tree = tree.with_swap(graph, e, f);
                stats.improvements += 1;
            }
        }
    }
    stats.final_potential = potential.value(graph, &tree);
    (tree, stats)
}

/// Algorithm 3 (sequential reference): repeatedly apply a well-nested improving swap
/// sequence prescribed by a nest-decreasing potential until the potential reaches zero,
/// or until the `φ_max` budget is exhausted (then `stats.converged` is `false`, exactly
/// as for [`local_search`]).
pub fn nested_local_search<P: NestDecreasing>(
    graph: &Graph,
    initial: Tree,
    potential: &P,
) -> (Tree, LocalSearchStats) {
    let mut tree = initial;
    let mut stats = LocalSearchStats {
        initial_potential: potential.value(graph, &tree),
        ..LocalSearchStats::default()
    };
    let budget = potential.max_value(graph).saturating_add(8);
    for _ in 0..=budget {
        match potential.improved(graph, &tree) {
            None => {
                stats.converged = true;
                break;
            }
            Some(next) => {
                tree = next;
                stats.improvements += 1;
            }
        }
    }
    stats.final_potential = potential.value(graph, &tree);
    (tree, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::potential::{BfsPotential, MdstPotential, MstPotential, Potential};
    use stst_graph::bfs::{bfs_tree, is_bfs_tree};
    use stst_graph::generators;
    use stst_graph::mst::is_mst;

    #[test]
    fn algorithm_1_instantiated_for_bfs() {
        // On a ring, the rooted path is a valid (but very poor) spanning tree.
        let g = generators::ring(16);
        let (tree, stats) = local_search(&g, Tree::path(16), &BfsPotential);
        assert!(is_bfs_tree(&g, &tree));
        assert_eq!(stats.final_potential, 0);
        assert!(stats.initial_potential > 0);
        assert!(stats.improvements > 0);
    }

    #[test]
    fn algorithm_1_instantiated_for_mst() {
        for seed in 0..4 {
            let g = generators::workload(18, 0.3, seed);
            let start = bfs_tree(&g, g.min_ident_node());
            let (tree, stats) = local_search(&g, start, &MstPotential);
            assert!(is_mst(&g, &tree), "seed {seed}");
            assert_eq!(stats.final_potential, 0);
        }
    }

    #[test]
    fn algorithm_3_instantiated_for_mdst() {
        let g = generators::complete(10);
        let star = Tree::from_parents(
            std::iter::once(None)
                .chain((1..10).map(|_| Some(stst_graph::NodeId(0))))
                .collect(),
        )
        .unwrap();
        let (tree, stats) = nested_local_search(&g, star, &MdstPotential);
        assert!(tree.max_degree() <= 3);
        assert_eq!(stats.final_potential, 0);
        assert!(stats.improvements >= 1);
    }

    #[test]
    fn report_phase_lookup() {
        let report = ConstructionReport {
            tree: Tree::path(3),
            total_rounds: 12,
            phase_rounds: vec![("tree construction", 5), ("labels", 7)],
            labels_written: 0,
            improvements: 1,
            max_register_bits: 32,
            legal: true,
        };
        assert_eq!(report.rounds_for("labels"), 7);
        assert_eq!(report.rounds_for("nothing"), 0);
    }

    #[test]
    fn engine_config_builders() {
        let c = EngineConfig::seeded(9)
            .with_scheduler(SchedulerKind::Adversarial)
            .with_max_steps(123)
            .with_relabel(Relabel::FromScratch)
            .with_threads(4);
        assert_eq!(c.seed, 9);
        assert_eq!(c.scheduler, SchedulerKind::Adversarial);
        assert_eq!(c.max_steps, 123);
        assert_eq!(c.relabel, Relabel::FromScratch);
        assert_eq!(c.threads, 4);
        assert_eq!(EngineConfig::default().scheduler, SchedulerKind::Central);
        assert_eq!(EngineConfig::default().relabel, Relabel::Incremental);
        assert_eq!(EngineConfig::default().threads, 1);
        assert_eq!(EngineConfig::seeded(0).with_threads(0).threads, 1);
    }

    #[test]
    fn both_search_engines_report_budget_exhaustion_the_same_way() {
        // A deliberately broken potential: always claims an improving move exists and
        // never decreases. Both engines must stop at the φ_max budget and report
        // `converged: false` instead of panicking or silently looking converged.
        struct Liar;
        impl Potential for Liar {
            fn name(&self) -> &str {
                "liar"
            }
            fn value(&self, _: &Graph, _: &Tree) -> u64 {
                1
            }
            fn max_value(&self, _: &Graph) -> u64 {
                4
            }
        }
        impl CyclicalDecreasing for Liar {
            fn improving_swap(
                &self,
                graph: &Graph,
                tree: &Tree,
            ) -> Option<(stst_graph::EdgeId, stst_graph::EdgeId)> {
                // Swap a non-tree edge with a cycle edge and back, forever.
                let e = graph.edge_ids().find(|&e| {
                    let ed = graph.edge(e);
                    !tree.contains_edge(ed.u, ed.v)
                })?;
                let f = tree.fundamental_cycle_tree_edges(graph, e)[0];
                Some((e, f))
            }
        }
        impl NestDecreasing for Liar {
            fn improved(&self, graph: &Graph, tree: &Tree) -> Option<Tree> {
                let (e, f) = self.improving_swap(graph, tree)?;
                Some(tree.with_swap(graph, e, f))
            }
        }
        let g = stst_graph::generators::ring(6);
        let (_, flat) = local_search(&g, Tree::path(6), &Liar);
        let (_, nested) = nested_local_search(&g, Tree::path(6), &Liar);
        assert!(!flat.converged);
        assert!(!nested.converged);
        assert!(flat.improvements > 0);
        assert_eq!(flat.improvements, nested.improvements);
        assert_eq!(flat.final_potential, 1);
        assert_eq!(nested.final_potential, 1);
    }

    #[test]
    fn converged_runs_say_so() {
        let g = generators::ring(12);
        let (_, stats) = local_search(&g, Tree::path(12), &BfsPotential);
        assert!(stats.converged);
        assert_eq!(stats.final_potential, 0);
    }
}
