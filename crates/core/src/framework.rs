//! The PLS-guided local-search engines (Algorithm 1 and Algorithm 3) and the report
//! structure shared by the composed constructions.

use stst_graph::{Graph, Tree};
use stst_runtime::SchedulerKind;

use crate::potential::{CyclicalDecreasing, NestDecreasing};

/// Configuration of a composed construction run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EngineConfig {
    /// Seed for the arbitrary initial configuration and the daemon.
    pub seed: u64,
    /// Daemon used by the guarded-rule phases.
    pub scheduler: SchedulerKind,
    /// Step budget for the guarded-rule phases.
    pub max_steps: u64,
}

impl EngineConfig {
    /// Central daemon, generous step budget.
    pub fn seeded(seed: u64) -> Self {
        EngineConfig {
            seed,
            scheduler: SchedulerKind::Central,
            max_steps: 5_000_000,
        }
    }

    /// Overrides the daemon.
    pub fn with_scheduler(mut self, scheduler: SchedulerKind) -> Self {
        self.scheduler = scheduler;
        self
    }
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig::seeded(0)
    }
}

/// Report of a composed silent self-stabilizing construction (MST, MDST, …).
#[derive(Clone, Debug)]
pub struct ConstructionReport {
    /// The stabilized spanning tree.
    pub tree: Tree,
    /// Total rounds: guarded-rule rounds of the tree-construction phase plus the round
    /// charges of every wave and switch of the improvement phase.
    pub total_rounds: u64,
    /// Rounds broken down by phase.
    pub phase_rounds: Vec<(String, u64)>,
    /// Number of edge swaps (or well-nested swap sequences) applied.
    pub improvements: usize,
    /// Maximum register size (bits per node) observed across all phases, including the
    /// labels maintained for silence.
    pub max_register_bits: usize,
    /// Whether the stabilized output satisfies the task's legality predicate.
    pub legal: bool,
}

impl ConstructionReport {
    /// Rounds charged to phases whose label contains `needle`.
    pub fn rounds_for(&self, needle: &str) -> u64 {
        self.phase_rounds
            .iter()
            .filter(|(l, _)| l.contains(needle))
            .map(|(_, r)| r)
            .sum()
    }
}

/// Statistics of a sequential local-search run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LocalSearchStats {
    /// Number of applied improvements.
    pub improvements: usize,
    /// Potential of the initial tree.
    pub initial_potential: u64,
    /// Potential of the final tree (zero on success).
    pub final_potential: u64,
}

/// Algorithm 1 (sequential reference): repeatedly apply the improving swap prescribed by
/// a cyclical-decreasing potential until the potential reaches zero.
///
/// # Panics
///
/// Panics if the potential fails to decrease (which would contradict the
/// cyclical-decreasing property) for more than `φ_max` iterations.
pub fn local_search<P: CyclicalDecreasing>(
    graph: &Graph,
    initial: Tree,
    potential: &P,
) -> (Tree, LocalSearchStats) {
    let mut tree = initial;
    let mut stats = LocalSearchStats {
        initial_potential: potential.value(graph, &tree),
        ..LocalSearchStats::default()
    };
    let budget = potential.max_value(graph).saturating_add(8);
    for _ in 0..=budget {
        match potential.improving_swap(graph, &tree) {
            None => {
                stats.final_potential = potential.value(graph, &tree);
                return (tree, stats);
            }
            Some((e, f)) => {
                tree = tree.with_swap(graph, e, f);
                stats.improvements += 1;
            }
        }
    }
    panic!(
        "potential '{}' did not reach zero within its own φ_max budget",
        potential.name()
    );
}

/// Algorithm 3 (sequential reference): repeatedly apply a well-nested improving swap
/// sequence prescribed by a nest-decreasing potential until the potential reaches zero.
pub fn nested_local_search<P: NestDecreasing>(
    graph: &Graph,
    initial: Tree,
    potential: &P,
) -> (Tree, LocalSearchStats) {
    let mut tree = initial;
    let mut stats = LocalSearchStats {
        initial_potential: potential.value(graph, &tree),
        ..LocalSearchStats::default()
    };
    let budget = potential.max_value(graph).saturating_add(8);
    for _ in 0..=budget {
        match potential.improved(graph, &tree) {
            None => break,
            Some(next) => {
                tree = next;
                stats.improvements += 1;
            }
        }
    }
    stats.final_potential = potential.value(graph, &tree);
    (tree, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::potential::{BfsPotential, MdstPotential, MstPotential};
    use stst_graph::bfs::{bfs_tree, is_bfs_tree};
    use stst_graph::generators;
    use stst_graph::mst::is_mst;

    #[test]
    fn algorithm_1_instantiated_for_bfs() {
        // On a ring, the rooted path is a valid (but very poor) spanning tree.
        let g = generators::ring(16);
        let (tree, stats) = local_search(&g, Tree::path(16), &BfsPotential);
        assert!(is_bfs_tree(&g, &tree));
        assert_eq!(stats.final_potential, 0);
        assert!(stats.initial_potential > 0);
        assert!(stats.improvements > 0);
    }

    #[test]
    fn algorithm_1_instantiated_for_mst() {
        for seed in 0..4 {
            let g = generators::workload(18, 0.3, seed);
            let start = bfs_tree(&g, g.min_ident_node());
            let (tree, stats) = local_search(&g, start, &MstPotential);
            assert!(is_mst(&g, &tree), "seed {seed}");
            assert_eq!(stats.final_potential, 0);
        }
    }

    #[test]
    fn algorithm_3_instantiated_for_mdst() {
        let g = generators::complete(10);
        let star = Tree::from_parents(
            std::iter::once(None)
                .chain((1..10).map(|_| Some(stst_graph::NodeId(0))))
                .collect(),
        )
        .unwrap();
        let (tree, stats) = nested_local_search(&g, star, &MdstPotential);
        assert!(tree.max_degree() <= 3);
        assert_eq!(stats.final_potential, 0);
        assert!(stats.improvements >= 1);
    }

    #[test]
    fn report_phase_lookup() {
        let report = ConstructionReport {
            tree: Tree::path(3),
            total_rounds: 12,
            phase_rounds: vec![("tree construction".into(), 5), ("labels".into(), 7)],
            improvements: 1,
            max_register_bits: 32,
            legal: true,
        };
        assert_eq!(report.rounds_for("labels"), 7);
        assert_eq!(report.rounds_for("nothing"), 0);
    }

    #[test]
    fn engine_config_builders() {
        let c = EngineConfig::seeded(9).with_scheduler(SchedulerKind::Adversarial);
        assert_eq!(c.seed, 9);
        assert_eq!(c.scheduler, SchedulerKind::Adversarial);
        assert_eq!(EngineConfig::default().scheduler, SchedulerKind::Central);
    }
}
