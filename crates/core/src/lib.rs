//! The paper's contribution: proof-labeling-scheme-guided, silent, self-stabilizing
//! constructions of constrained spanning trees.
//!
//! The crate is organized along the paper's own structure:
//!
//! * [`potential`] — cyclical-decreasing and nest-decreasing potential functions (§III,
//!   §VII) for BFS, MST and MDST;
//! * [`framework`] — the PLS-guided local-search engines: Algorithm 1 (single edge
//!   swaps) and Algorithm 3 (well-nested swap sequences), in their sequential reference
//!   form;
//! * [`spanning`] and [`bfs`] — genuine guarded-rule silent self-stabilizing spanning
//!   tree / BFS constructions running on the [`stst_runtime`] state model (the paper's
//!   Instruction 1 and the §III example);
//! * [`switch`] — the loop-free edge-switch module of §IV, which performs
//!   `T ← T + e − f` through a sequence of local reparentings while keeping the
//!   redundant (malleable) labels accepted at every intermediate configuration;
//! * [`engine`] — the resumable composition engine: owns the tree and every label
//!   family as persistent state, steps at phase granularity, repairs labels
//!   incrementally on the dirty region of each switch (with the from-scratch provers
//!   retained behind [`Relabel::FromScratch`]), and accepts wave-boundary label
//!   corruption with measured recovery;
//! * [`nca_build`] — the wave-based construction of the NCA labels of §V on a
//!   stabilized tree, with round and space accounting;
//! * [`waves`] — round-cost accounting for broadcast/convergecast waves over the
//!   current tree (the composition currency of the paper's Lemmas 3.1 and 7.1);
//! * [`mst`] — Corollary 6.1: the silent self-stabilizing MST construction
//!   (PLS-guided Borůvka, Algorithm 2);
//! * [`mdst`] — Corollary 8.1: the silent self-stabilizing MDST construction
//!   stabilizing on FR-trees (distributed Fürer–Raghavachari, Algorithm 4).
//!
//! ## Execution models
//!
//! The spanning-tree / BFS layer runs as *bona fide* guarded rules under any daemon of
//! the runtime. The MST and MDST constructions are composed exactly as the paper
//! composes them — label-construction waves, fundamental-cycle searches and loop-free
//! switches over the current tree — and are simulated at *wave granularity* by the
//! [`engine`]: every wave is charged its real round cost on the current tree (heights,
//! path lengths and dirty regions are measured, not assumed), labels are repaired
//! incrementally per switch exactly as the paper's lemmas charge them (with staged,
//! malleable-scheme-verified switches retained in the [`Relabel::FromScratch`]
//! reference mode). DESIGN.md discusses this choice.

pub mod bfs;
pub mod engine;
pub mod framework;
pub mod mdst;
pub mod mst;
pub mod nca_build;
pub mod potential;
pub mod spanning;
pub mod switch;
pub mod waves;

pub use engine::{CompositionEngine, EngineTask, PhaseEvent, RestoreOutcome};
pub use framework::{ConstructionReport, EngineConfig, Relabel};
pub use mdst::construct_mdst;
pub use mst::construct_mst;
// The runtime's fault hooks, daemons and snapshot container, re-exported so
// wave-boundary corruption and checkpoint/restore scenarios can be scripted against
// `stst-core` alone.
pub use stst_runtime::{
    Algorithm, ExecMode, Executor, ExecutorConfig, RestoreError, SchedulerKind, Snapshot,
};
