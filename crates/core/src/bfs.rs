//! The §III example: silent, space-optimal, self-stabilizing BFS construction.
//!
//! Two variants are provided:
//!
//! * [`RootedBfs`] — the designated-root variant matching the paper's example: a fixed
//!   root `r` (identified by its incorruptible identity) and registers `(parent, dist)`
//!   on `O(log n)` bits; every node adopts the neighbor offering the smallest distance.
//! * The leader-elected variant is [`crate::spanning::MinIdSpanningTree`], whose fixed
//!   point is a BFS tree rooted at the minimum-identity node.

use rand::rngs::StdRng;
use rand::Rng;

use stst_graph::{Graph, Ident, NodeId};
use stst_runtime::bits::{BitReader, BitWriter};
use stst_runtime::codec::FieldSpec;
use stst_runtime::{Algorithm, Codec, CodecCtx, ParentPointer, RawView, Screen, View};

/// Register of the rooted BFS construction: parent pointer plus distance, `O(log n)` bits.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BfsState {
    /// Identity of the parent neighbor (`⊥` at the root, or while orphaned).
    pub parent: Option<Ident>,
    /// Claimed hop distance to the root (`n` is used as the "unreachable" sentinel).
    pub dist: u64,
}

impl Codec for BfsState {
    fn encoded_bits(&self, ctx: &CodecCtx) -> usize {
        CodecCtx::opt_uint_bits(&self.parent, ctx.ident_bits)
            + CodecCtx::uint_bits(self.dist, ctx.count_bits)
    }

    fn encode_into(&self, ctx: &CodecCtx, w: &mut BitWriter<'_>) {
        CodecCtx::write_opt_uint(w, &self.parent, ctx.ident_bits);
        CodecCtx::write_uint(w, self.dist, ctx.count_bits);
    }

    fn decode_from(ctx: &CodecCtx, r: &mut BitReader<'_>) -> Self {
        BfsState {
            parent: CodecCtx::read_opt_uint(r, ctx.ident_bits),
            dist: CodecCtx::read_uint(r, ctx.count_bits),
        }
    }

    fn field_specs(ctx: &CodecCtx) -> Vec<FieldSpec> {
        // Fault-free shape with the parent present: presence bit, escape bit, parent
        // payload, escape bit, dist payload.
        vec![
            FieldSpec {
                name: "parent",
                offset: 2,
                width: ctx.ident_bits,
            },
            FieldSpec {
                name: "dist",
                offset: 3 + ctx.ident_bits,
                width: ctx.count_bits,
            },
        ]
    }
}

impl ParentPointer for BfsState {
    fn parent_ident(&self) -> Option<Ident> {
        self.parent
    }
}

/// Silent self-stabilizing BFS construction with a designated root.
#[derive(Clone, Copy, Debug)]
pub struct RootedBfs {
    /// Identity of the designated root (an incorruptible constant known to every node —
    /// in practice the outcome of leader election).
    pub root_ident: Ident,
}

impl RootedBfs {
    /// BFS rooted at the node carrying identity `root_ident`.
    pub fn new(root_ident: Ident) -> Self {
        RootedBfs { root_ident }
    }
}

impl Algorithm for RootedBfs {
    type State = BfsState;

    fn name(&self) -> &str {
        "silent rooted BFS"
    }

    fn arbitrary_state(&self, graph: &Graph, _node: NodeId, rng: &mut StdRng) -> BfsState {
        let n = graph.node_count() as u64;
        let parent = match rng.gen_range(0..3) {
            0 => None,
            _ => Some(rng.gen_range(0..=2 * n.max(1))),
        };
        BfsState {
            parent,
            dist: rng.gen_range(0..=n + 1),
        }
    }

    fn step(&self, view: &View<'_, BfsState>) -> Option<BfsState> {
        let n = view.n as u64;
        let desired = if view.ident == self.root_ident {
            BfsState {
                parent: None,
                dist: 0,
            }
        } else {
            // Adopt the neighbor with the smallest distance (ties broken by identity);
            // distances are capped at n − 1, the orphan state is (⊥, n).
            view.neighbors()
                .filter(|nb| nb.state.dist + 1 < n)
                .min_by_key(|nb| (nb.state.dist, nb.ident))
                .map(|nb| BfsState {
                    parent: Some(nb.ident),
                    dist: nb.state.dist + 1,
                })
                .unwrap_or(BfsState {
                    parent: None,
                    dist: n,
                })
        };
        (desired != *view.state).then_some(desired)
    }

    /// Decode-free mirror of [`RootedBfs::step`]: extracts `(parent, dist)` of the
    /// closed neighborhood straight from the packed heap and replays the same
    /// min-offer arithmetic. Any fired escape bit (fault garbage wider than the
    /// nominal field) aborts to `Unknown` so the full-decode path — which handles
    /// arbitrary garbage — stays the single source of truth there.
    fn guard_screen(&self, raw: &RawView<'_>) -> Screen<BfsState> {
        let ctx = raw.ctx();
        let mut own = raw.own_reader();
        let Some(parent) = own.opt_uint(ctx.ident_bits) else {
            return Screen::Unknown;
        };
        let Some(dist) = own.uint(ctx.count_bits) else {
            return Screen::Unknown;
        };
        let current = BfsState { parent, dist };
        let n = raw.n as u64;
        let desired = if raw.ident == self.root_ident {
            BfsState {
                parent: None,
                dist: 0,
            }
        } else {
            // `min_by_key` keeps the first of equal minima, so only a strictly
            // smaller key replaces the incumbent. Extracted fields are un-escaped,
            // hence < 2^count_bits: the +1 cannot wrap (the same arithmetic `step`
            // performs on the decoded values).
            let mut best: Option<(u64, Ident)> = None;
            for port in 0..raw.degree() {
                let mut r = raw.reader_of(port);
                if r.opt_uint(ctx.ident_bits).is_none() {
                    return Screen::Unknown;
                }
                let Some(nb_dist) = r.uint(ctx.count_bits) else {
                    return Screen::Unknown;
                };
                if nb_dist + 1 < n {
                    let key = (nb_dist, raw.neighbor(port).ident);
                    match best {
                        Some(incumbent) if incumbent <= key => {}
                        _ => best = Some(key),
                    }
                }
            }
            match best {
                Some((d, ident)) => BfsState {
                    parent: Some(ident),
                    dist: d + 1,
                },
                None => BfsState {
                    parent: None,
                    dist: n,
                },
            }
        };
        if desired == current {
            Screen::Disabled
        } else {
            Screen::Enabled(desired)
        }
    }

    fn is_legal(&self, graph: &Graph, states: &[BfsState]) -> bool {
        let Ok(tree) = stst_runtime::executor::parent_pointer_tree(graph, states) else {
            return false;
        };
        if graph.ident(tree.root()) != self.root_ident {
            return false;
        }
        // Legality for the BFS task: tree depths equal graph distances, and registers
        // store those depths.
        if !stst_graph::bfs::is_bfs_tree(graph, &tree) {
            return false;
        }
        let depths = tree.depths();
        graph
            .nodes()
            .all(|v| states[v.0].dist == depths[v.0] as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stst_graph::generators;
    use stst_runtime::{Executor, ExecutorConfig, SchedulerKind};

    fn run(graph: &Graph, seed: u64, kind: SchedulerKind) -> (stst_runtime::Quiescence, usize) {
        let root_ident = graph.ident(graph.min_ident_node());
        let algo = RootedBfs::new(root_ident);
        let mut exec =
            Executor::from_arbitrary(graph, algo, ExecutorConfig::with_scheduler(seed, kind));
        let q = exec
            .run_to_quiescence(4_000_000)
            .expect("BFS must converge");
        (q, exec.peak_space_report().max_bits)
    }

    #[test]
    fn stabilizes_on_a_bfs_tree_from_arbitrary_states() {
        for seed in 0..5 {
            let g = generators::workload(30, 0.15, seed);
            let (q, _) = run(&g, seed, SchedulerKind::Central);
            assert!(q.silent && q.legal, "seed {seed}");
        }
    }

    #[test]
    fn works_on_structured_topologies_and_all_daemons() {
        for g in [
            generators::ring(12),
            generators::grid(4, 5),
            generators::star(14),
        ] {
            for kind in SchedulerKind::all() {
                let (q, _) = run(&g, 3, kind);
                assert!(q.legal, "daemon {kind} on a structured topology");
            }
        }
    }

    #[test]
    fn registers_are_logarithmic() {
        let g = generators::workload(128, 0.04, 1);
        let (_, bits) = run(&g, 1, SchedulerKind::Central);
        assert!(
            bits <= 2 * 9 + 3,
            "BFS registers should be O(log n) bits, got {bits}"
        );
    }

    #[test]
    fn rounds_grow_linearly_not_exponentially() {
        let mut previous = 0u64;
        for n in [16usize, 32, 64] {
            let g = generators::workload(n, 0.1, 5);
            let (q, _) = run(&g, 5, SchedulerKind::Synchronous);
            assert!(
                q.rounds <= 3 * n as u64 + 10,
                "n = {n}: {} rounds",
                q.rounds
            );
            previous = previous.max(q.rounds);
        }
        assert!(previous > 0);
    }

    #[test]
    fn codec_round_trips_across_the_reachable_and_garbage_state_space() {
        use rand::SeedableRng;
        use stst_runtime::codec::assert_codec_roundtrip;
        let g = generators::workload(30, 0.15, 2);
        let ctx = stst_runtime::CodecCtx::for_graph(&g);
        let algo = RootedBfs::new(g.ident(g.min_ident_node()));
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        for v in g.nodes() {
            assert_codec_roundtrip(&ctx, &algo.arbitrary_state(&g, v, &mut rng));
        }
        // Boundary shapes: the ⊥ parent, distance 0, and out-of-width fault garbage.
        for state in [
            BfsState {
                parent: None,
                dist: 0,
            },
            BfsState {
                parent: Some(0),
                dist: 0,
            },
            BfsState {
                parent: Some(u64::MAX),
                dist: u64::MAX,
            },
        ] {
            assert_codec_roundtrip(&ctx, &state);
        }
    }

    #[test]
    fn field_extraction_matches_decoding_for_random_and_garbage_registers() {
        use rand::SeedableRng;
        use stst_runtime::codec::FieldReader;
        let g = generators::workload(30, 0.15, 2);
        let ctx = stst_runtime::CodecCtx::for_graph(&g);
        let algo = RootedBfs::new(g.ident(g.min_ident_node()));
        let mut rng = rand::rngs::StdRng::seed_from_u64(77);
        let mut states: Vec<BfsState> = g
            .nodes()
            .map(|v| algo.arbitrary_state(&g, v, &mut rng))
            .collect();
        states.push(BfsState {
            parent: Some(u64::MAX), // escapes the ident field
            dist: 3,
        });
        states.push(BfsState {
            parent: Some(2),
            dist: u64::MAX, // escapes the count field
        });
        states.push(BfsState {
            parent: None,
            dist: 0,
        });
        let specs = BfsState::field_specs(&ctx);
        assert_eq!(
            specs.iter().map(|s| s.name).collect::<Vec<_>>(),
            ["parent", "dist"]
        );
        for state in &states {
            let mut words = Vec::new();
            let mut w = BitWriter::new(&mut words, 0);
            state.encode_into(&ctx, &mut w);
            let mut f = FieldReader::new(&words, 0);
            let parent = f.opt_uint(ctx.ident_bits);
            if state.parent.is_some_and(|p| p >= 1 << ctx.ident_bits) {
                // Escape-set slot: extraction must refuse (the screen falls back to
                // the full decode, which handles arbitrary garbage).
                assert_eq!(parent, None, "{state:?}");
            } else {
                assert_eq!(parent, Some(state.parent), "{state:?}");
            }
            let dist = f.uint(ctx.count_bits);
            if state.dist >= 1 << ctx.count_bits {
                assert_eq!(dist, None, "{state:?}");
            } else {
                assert_eq!(dist, Some(state.dist), "{state:?}");
            }
            // Fault-free fully-present shape: the static FieldSpec offsets are valid.
            if let Some(p) = state.parent {
                if parent == Some(state.parent) && dist == Some(state.dist) {
                    let mut r = BitReader::new(&words, specs[0].offset as u64);
                    assert_eq!(r.read(specs[0].width as usize), p);
                    let mut r = BitReader::new(&words, specs[1].offset as u64);
                    assert_eq!(r.read(specs[1].width as usize), state.dist);
                }
            }
        }
    }

    #[test]
    fn recovery_after_targeted_corruption() {
        let g = generators::workload(25, 0.2, 8);
        let root_ident = g.ident(g.min_ident_node());
        let mut exec =
            Executor::from_arbitrary(&g, RootedBfs::new(root_ident), ExecutorConfig::seeded(2));
        exec.run_to_quiescence(2_000_000).unwrap();
        // Corrupt a handful of registers with absurd distances and parents.
        exec.corrupt_node(
            NodeId(3),
            BfsState {
                parent: Some(9999),
                dist: 0,
            },
        );
        exec.corrupt_node(
            NodeId(7),
            BfsState {
                parent: None,
                dist: 17,
            },
        );
        let q = exec.run_to_quiescence(2_000_000).unwrap();
        assert!(q.legal);
    }
}
