//! Potential functions guiding the local search (§III and §VII).
//!
//! A family `F` of spanning trees admits a **cyclical-decreasing** potential `φ` when
//! `φ(T) ≥ 0`, `φ(T) = 0 ⇔ T ∈ F`, and every tree with `φ(T) > 0` has a fundamental
//! cycle `T + e` containing a tree edge `f` with `φ(T + e − f) < φ(T)`. The
//! **nest-decreasing** generalization (§VII) replaces the single swap by a well-nested
//! sequence of swaps. These traits are what the [`crate::framework`] engines consume.

use stst_graph::{EdgeId, Graph, Tree};

/// A potential function measuring how far a spanning tree is from the target family.
pub trait Potential {
    /// Human-readable name (for reports).
    fn name(&self) -> &str;

    /// `φ(T) ≥ 0`, with `φ(T) = 0` iff `T` belongs to the target family.
    fn value(&self, graph: &Graph, tree: &Tree) -> u64;

    /// A coarse upper bound `φ_max` on the potential over all spanning trees of `graph`
    /// (enters the round-complexity bound of Lemma 3.1).
    fn max_value(&self, graph: &Graph) -> u64;

    /// `true` iff the tree belongs to the target family.
    fn is_target(&self, graph: &Graph, tree: &Tree) -> bool {
        self.value(graph, tree) == 0
    }
}

/// A potential that decreases along single edge swaps (Algorithm 1).
pub trait CyclicalDecreasing: Potential {
    /// For a tree with `φ(T) > 0`: a non-tree edge `e` and a tree edge `f` on the
    /// fundamental cycle of `T + e` with `φ(T + e − f) < φ(T)`. Must return `None`
    /// exactly when `φ(T) = 0`.
    fn improving_swap(&self, graph: &Graph, tree: &Tree) -> Option<(EdgeId, EdgeId)>;
}

/// A potential that decreases along well-nested swap sequences (Algorithm 3).
pub trait NestDecreasing: Potential {
    /// For a tree with `φ(T) > 0`: the tree resulting from applying one well-nested
    /// sequence of swaps with strictly smaller potential. Must return `None` exactly
    /// when `φ(T) = 0`.
    fn improved(&self, graph: &Graph, tree: &Tree) -> Option<Tree>;
}

/// The BFS potential of the §III example: `φ(T) = Σ_u |depth_T(u) − dist_G(u, r)|`,
/// with the improving swap `e = {u, v}` for a neighbor `v` certifying
/// `d(v) < d(u) − 1`, `f = {u, p(u)}`.
#[derive(Clone, Copy, Debug, Default)]
pub struct BfsPotential;

impl Potential for BfsPotential {
    fn name(&self) -> &str {
        "BFS potential (Σ |depth − dist|)"
    }

    fn value(&self, graph: &Graph, tree: &Tree) -> u64 {
        stst_graph::bfs::bfs_potential(graph, tree)
    }

    fn max_value(&self, graph: &Graph) -> u64 {
        (graph.node_count() * graph.node_count()) as u64
    }
}

impl CyclicalDecreasing for BfsPotential {
    fn improving_swap(&self, graph: &Graph, tree: &Tree) -> Option<(EdgeId, EdgeId)> {
        let depths = tree.depths();
        // A node u with a neighbor v such that depth(v) + 1 < depth(u) can re-parent to
        // v; pick the pair with the deepest violation to keep the choice deterministic.
        let mut best: Option<(EdgeId, EdgeId, u64)> = None;
        for u in tree.nodes() {
            let Some(p) = tree.parent(u) else { continue };
            let f = graph.edge_between(u, p).expect("tree edge");
            for &(v, e) in graph.neighbors(u) {
                if v == p {
                    continue;
                }
                if depths[v.0] + 1 < depths[u.0] {
                    let gain = (depths[u.0] - depths[v.0] - 1) as u64;
                    if best.is_none_or(|(_, _, g)| gain > g) {
                        best = Some((e, f, gain));
                    }
                }
            }
        }
        best.map(|(e, f, _)| (e, f))
    }
}

/// The MST potential of §VI: `φ(T) = k·n − Σ_x φ_x(T)` over the Borůvka-trace fragment
/// labels; the improving swap adds the true minimum-weight outgoing edge of a violating
/// fragment and removes the heaviest edge of its fundamental cycle (red rule).
#[derive(Clone, Copy, Debug, Default)]
pub struct MstPotential;

impl Potential for MstPotential {
    fn name(&self) -> &str {
        "MST fragment potential (§VI)"
    }

    fn value(&self, graph: &Graph, tree: &Tree) -> u64 {
        stst_labeling::mst_fragments::mst_potential(graph, tree)
    }

    fn max_value(&self, graph: &Graph) -> u64 {
        let n = graph.node_count() as u64;
        n * (64 - n.leading_zeros() as u64 + 1)
    }
}

impl CyclicalDecreasing for MstPotential {
    fn improving_swap(&self, graph: &Graph, tree: &Tree) -> Option<(EdgeId, EdgeId)> {
        stst_labeling::mst_fragments::fragment_guided_swap(graph, tree)
    }
}

/// The MDST potential of §VIII: `φ(T) = (n·∆_T + N_T)(1 − 1_FR(T))`; the improvement is
/// the well-nested swap sequence of Fürer–Raghavachari reducing the degree of a good
/// max-degree node.
#[derive(Clone, Copy, Debug, Default)]
pub struct MdstPotential;

impl Potential for MdstPotential {
    fn name(&self) -> &str {
        "MDST / FR-tree potential (§VIII)"
    }

    fn value(&self, graph: &Graph, tree: &Tree) -> u64 {
        stst_labeling::fr_labels::mdst_potential(graph, tree)
    }

    fn max_value(&self, graph: &Graph) -> u64 {
        let n = graph.node_count() as u64;
        n * n + n
    }
}

impl NestDecreasing for MdstPotential {
    fn improved(&self, graph: &Graph, tree: &Tree) -> Option<Tree> {
        if stst_graph::fr::is_fr_tree(graph, tree) {
            return None;
        }
        // One outer iteration of Fürer–Raghavachari: find an improvable max-degree node
        // and apply its well-nested swap sequence. `furer_raghavachari_from` applies
        // improvements until none is possible; to expose *one* improvement at a time we
        // run it with the current tree and stop after the potential dropped.
        let (improved, stats) = stst_graph::fr::furer_raghavachari_from(graph, tree);
        if stats.improvements == 0 {
            // Not an FR-tree yet no improvement applies: this can only happen when the
            // nested application was invalidated; treat as converged (callers verify the
            // FR property separately).
            return None;
        }
        Some(improved)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stst_graph::bfs::{bfs_tree, is_bfs_tree};
    use stst_graph::generators;
    use stst_graph::mst::is_mst;

    #[test]
    fn bfs_potential_decreases_along_its_swaps() {
        let g = generators::ring(10);
        let mut t = Tree::path(10); // rooted path: terrible BFS tree for the ring
        let mut previous = BfsPotential.value(&g, &t);
        assert!(previous > 0);
        let mut guard = 0;
        while let Some((e, f)) = BfsPotential.improving_swap(&g, &t) {
            t = t.with_swap(&g, e, f);
            let now = BfsPotential.value(&g, &t);
            assert!(
                now < previous,
                "swap must strictly decrease φ ({previous} → {now})"
            );
            previous = now;
            guard += 1;
            assert!(guard < 200);
        }
        assert!(is_bfs_tree(&g, &t));
        assert!(BfsPotential.is_target(&g, &t));
        assert!(BfsPotential.max_value(&g) >= previous);
    }

    #[test]
    fn mst_potential_guides_to_the_optimum() {
        let g = generators::workload(16, 0.3, 3);
        let mut t = bfs_tree(&g, g.min_ident_node());
        let mut guard = 0;
        while let Some((e, f)) = MstPotential.improving_swap(&g, &t) {
            let before = t.total_weight(&g);
            t = t.with_swap(&g, e, f);
            assert!(t.total_weight(&g) < before);
            guard += 1;
            assert!(guard < 500);
        }
        assert!(is_mst(&g, &t));
        assert!(MstPotential.is_target(&g, &t));
    }

    #[test]
    fn mdst_potential_reaches_an_fr_tree() {
        let g = generators::complete(9);
        let star = Tree::from_parents(
            std::iter::once(None)
                .chain((1..9).map(|_| Some(stst_graph::NodeId(0))))
                .collect(),
        )
        .unwrap();
        assert!(MdstPotential.value(&g, &star) > 0);
        let improved = MdstPotential
            .improved(&g, &star)
            .expect("the star is improvable");
        assert!(MdstPotential.value(&g, &improved) < MdstPotential.value(&g, &star));
        assert!(MdstPotential.improved(&g, &improved).is_none() || improved.max_degree() <= 3);
    }

    #[test]
    fn names_and_bounds_are_sane() {
        let g = generators::workload(12, 0.3, 1);
        let t = bfs_tree(&g, g.min_ident_node());
        for p in [
            &BfsPotential as &dyn Potential,
            &MstPotential,
            &MdstPotential,
        ] {
            assert!(!p.name().is_empty());
            assert!(p.max_value(&g) >= p.value(&g, &t));
        }
    }
}
