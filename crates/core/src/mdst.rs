//! Corollary 8.1: the silent self-stabilizing MDST construction, stabilizing on FR-trees
//! (degree ≤ OPT + 1), with `O(log n)`-bit registers.
//!
//! Composition, exactly as in §VIII:
//!
//! 1. build a spanning tree with the guarded-rule construction of
//!    [`crate::spanning::MinIdSpanningTree`];
//! 2. construct the FR labels (good/bad marking, certified fragment pointers) on the
//!    current tree; the proof-labeling scheme of Lemma 8.1 detects whether the tree is
//!    an FR-tree;
//! 3. while it is not (`φ(T) > 0`), apply one Fürer–Raghavachari improvement — a
//!    *well-nested* sequence of edge swaps reducing the degree of an improvable
//!    max-degree node (Algorithm 4) — each individual swap going through the loop-free
//!    switch machinery;
//! 4. when the tree is an FR-tree, its degree is at most OPT + 1
//!    (Fürer–Raghavachari's theorem), the labels are consistent, and no rule is
//!    enabled: the construction is silent.

use stst_graph::fr::{fr_certificate, improve_once, is_fr_tree};
use stst_graph::{EdgeId, Graph, Tree};
use stst_labeling::fr_labels::FrScheme;
use stst_labeling::redundant::RedundantScheme;
use stst_labeling::scheme::ProofLabelingScheme;
use stst_runtime::{Executor, ExecutorConfig};

use crate::framework::{ConstructionReport, EngineConfig};
use crate::nca_build::build_nca_labels;
use crate::spanning::MinIdSpanningTree;
use crate::waves::{self, RoundLedger};

/// Runs the silent self-stabilizing MDST (FR-tree) construction from an arbitrary
/// initial configuration and returns the measured report. `report.legal` is `true` iff
/// the stabilized tree is a certified FR-tree (hence of degree ≤ OPT + 1).
///
/// # Panics
///
/// Panics if the guarded-rule spanning-tree phase does not converge within the
/// configured step budget.
pub fn construct_mdst(graph: &Graph, config: &EngineConfig) -> ConstructionReport {
    let mut ledger = RoundLedger::new();
    let mut max_register_bits = 0usize;

    // Phase 1: guarded-rule spanning tree.
    let exec_config = ExecutorConfig::with_scheduler(config.seed, config.scheduler);
    let mut exec = Executor::from_arbitrary(graph, MinIdSpanningTree, exec_config);
    let quiescence = exec
        .run_to_quiescence(config.max_steps)
        .expect("the spanning-tree phase converges on connected graphs");
    ledger.charge("tree construction (guarded rules)", quiescence.rounds);
    max_register_bits = max_register_bits.max(exec.peak_space_report().max_bits);
    let mut tree: Tree = exec
        .extract_tree()
        .expect("phase 1 stabilizes on a spanning tree");

    // Phase 2/3: Fürer–Raghavachari improvement loop over well-nested swap sequences.
    let fr_scheme = FrScheme;
    let redundant = RedundantScheme;
    let mut improvements = 0usize;
    let guard = graph.node_count() * graph.node_count() + 10;
    for _ in 0..guard {
        // FR marking / fragment propagation: one convergecast + one broadcast over the
        // tree, plus a cycle inspection per candidate edge (charged as one broadcast).
        ledger.charge(
            "FR marking and fragment propagation",
            waves::convergecast_rounds(&tree) + 2 * waves::broadcast_rounds(&tree),
        );
        let nca = build_nca_labels(graph, &tree);
        ledger.charge("NCA labels", nca.rounds);
        let redundant_labels = redundant.prove(graph, &tree);
        ledger.charge(
            "redundant labels",
            waves::convergecast_rounds(&tree) + waves::broadcast_rounds(&tree),
        );
        // Register budget: redundant + NCA + FR labels (all O(log n)-bit, the point of
        // Corollary 8.1), measured.
        let fr_bits = if is_fr_tree(graph, &tree) {
            let labels = fr_scheme.prove(graph, &tree);
            labels
                .iter()
                .map(|l| fr_scheme.label_bits(l))
                .max()
                .unwrap_or(0)
        } else {
            // While not yet an FR-tree the nodes carry the same fields (degree, mark,
            // fragment pointer); account for the same size.
            2 * 8 + 2 + 2 * 8
        };
        let label_bits = fr_bits
            + nca.max_label_bits
            + redundant_labels
                .iter()
                .map(|l| redundant.label_bits(l))
                .max()
                .unwrap_or(0);
        max_register_bits = max_register_bits.max(label_bits);

        match improve_once(graph, &tree) {
            None => break,
            Some(next) => {
                // Charge the well-nested swap sequence: each swapped edge goes through a
                // loop-free switch whose pipelined cost is O(height + path); we charge
                // the measured symmetric difference times one switch wave.
                let swapped = edge_difference(graph, &tree, &next);
                let per_switch =
                    2 * waves::broadcast_rounds(&tree) + 2 * waves::convergecast_rounds(&tree) + 2;
                ledger.charge(
                    "well-nested loop-free switches",
                    per_switch * swapped.max(1) as u64,
                );
                tree = next;
                improvements += 1;
            }
        }
    }

    let legal = fr_certificate(graph, &tree).is_some();
    ConstructionReport {
        total_rounds: ledger.total(),
        phase_rounds: ledger.by_phase(),
        improvements,
        max_register_bits,
        legal,
        tree,
    }
}

/// Number of edges in which two spanning trees of the same graph differ (half of the
/// symmetric difference).
fn edge_difference(graph: &Graph, a: &Tree, b: &Tree) -> usize {
    let ea: std::collections::HashSet<EdgeId> = a.edge_ids_in(graph).into_iter().collect();
    let eb: std::collections::HashSet<EdgeId> = b.edge_ids_in(graph).into_iter().collect();
    ea.symmetric_difference(&eb).count() / 2
}

#[cfg(test)]
mod tests {
    use super::*;
    use stst_graph::fr::exact_min_degree_spanning_tree;
    use stst_graph::generators;
    use stst_runtime::SchedulerKind;

    #[test]
    fn stabilizes_on_fr_trees() {
        for seed in 0..4 {
            let g = generators::workload(18, 0.3, seed);
            let report = construct_mdst(&g, &EngineConfig::seeded(seed));
            assert!(
                report.legal,
                "seed {seed}: output must be a certified FR-tree"
            );
            assert!(is_fr_tree(&g, &report.tree));
        }
    }

    #[test]
    fn degree_is_within_one_of_optimal_on_small_graphs() {
        for seed in 0..5 {
            let g = generators::workload(11, 0.35, seed);
            let report = construct_mdst(&g, &EngineConfig::seeded(seed));
            let (opt, _) = exact_min_degree_spanning_tree(&g, 16);
            assert!(
                report.tree.max_degree() <= opt + 1,
                "seed {seed}: degree {} vs OPT {opt}",
                report.tree.max_degree()
            );
        }
    }

    #[test]
    fn registers_are_logarithmic_not_linear() {
        let g = generators::workload(80, 0.08, 2);
        let report = construct_mdst(&g, &EngineConfig::seeded(2));
        // The prior-art baseline needs Ω(n log n) = 80·7 ≈ 560 bits; ours must stay far
        // below (it is O(log n) + the O(log² n) NCA/redundant bookkeeping).
        assert!(
            report.max_register_bits < 300,
            "MDST registers too large: {} bits",
            report.max_register_bits
        );
    }

    #[test]
    fn round_count_is_polynomial_and_itemized() {
        let g = generators::workload(20, 0.25, 5);
        let report = construct_mdst(&g, &EngineConfig::seeded(5));
        let n = g.node_count() as u64;
        assert!(report.total_rounds <= n * n * n);
        assert!(report.rounds_for("tree construction") > 0);
        assert!(report.rounds_for("FR marking") > 0);
    }

    #[test]
    fn complete_graphs_get_low_degree_backbones() {
        let g = generators::complete(12);
        let report = construct_mdst(&g, &EngineConfig::seeded(1));
        assert!(report.legal);
        assert!(
            report.tree.max_degree() <= 3,
            "degree {}",
            report.tree.max_degree()
        );
    }

    #[test]
    fn works_under_the_adversarial_daemon() {
        let g = generators::workload(14, 0.3, 8);
        let config = EngineConfig::seeded(8).with_scheduler(SchedulerKind::Adversarial);
        let report = construct_mdst(&g, &config);
        assert!(report.legal);
    }
}
