//! Corollary 8.1: the silent self-stabilizing MDST construction, stabilizing on FR-trees
//! (degree ≤ OPT + 1), with `O(log n)`-bit registers.
//!
//! Composition, exactly as in §VIII:
//!
//! 1. build a spanning tree with the guarded-rule construction of
//!    [`crate::spanning::MinIdSpanningTree`];
//! 2. construct the FR labels (good/bad marking, certified fragment pointers) on the
//!    current tree; the proof-labeling scheme of Lemma 8.1 detects whether the tree is
//!    an FR-tree;
//! 3. while it is not (`φ(T) > 0`), apply one Fürer–Raghavachari improvement — a
//!    *well-nested* sequence of edge swaps reducing the degree of an improvable
//!    max-degree node (Algorithm 4) — each individual swap going through the loop-free
//!    switch machinery;
//! 4. when the tree is an FR-tree, its degree is at most OPT + 1
//!    (Fürer–Raghavachari's theorem), the labels are consistent, and no rule is
//!    enabled: the construction is silent.

use stst_graph::Graph;

use crate::engine::{CompositionEngine, EngineTask};
use crate::framework::{ConstructionReport, EngineConfig};

/// Runs the silent self-stabilizing MDST (FR-tree) construction from an arbitrary
/// initial configuration and returns the measured report. `report.legal` is `true` iff
/// the stabilized tree is a certified FR-tree (hence of degree ≤ OPT + 1).
///
/// This is a thin wrapper around [`CompositionEngine`] run to silence; use the engine
/// directly for phase-step control, incremental-vs-from-scratch comparisons
/// ([`crate::framework::Relabel`]) or wave-boundary fault injection.
///
/// # Panics
///
/// Panics if the guarded-rule spanning-tree phase does not converge within the
/// configured step budget.
pub fn construct_mdst(graph: &Graph, config: &EngineConfig) -> ConstructionReport {
    CompositionEngine::new(graph, EngineTask::Mdst, *config).run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use stst_graph::fr::{exact_min_degree_spanning_tree, is_fr_tree};
    use stst_graph::generators;
    use stst_runtime::SchedulerKind;

    #[test]
    fn stabilizes_on_fr_trees() {
        for seed in 0..4 {
            let g = generators::workload(18, 0.3, seed);
            let report = construct_mdst(&g, &EngineConfig::seeded(seed));
            assert!(
                report.legal,
                "seed {seed}: output must be a certified FR-tree"
            );
            assert!(is_fr_tree(&g, &report.tree));
        }
    }

    #[test]
    fn degree_is_within_one_of_optimal_on_small_graphs() {
        for seed in 0..5 {
            let g = generators::workload(11, 0.35, seed);
            let report = construct_mdst(&g, &EngineConfig::seeded(seed));
            let (opt, _) = exact_min_degree_spanning_tree(&g, 16);
            assert!(
                report.tree.max_degree() <= opt + 1,
                "seed {seed}: degree {} vs OPT {opt}",
                report.tree.max_degree()
            );
        }
    }

    #[test]
    fn registers_are_logarithmic_not_linear() {
        let g = generators::workload(80, 0.08, 2);
        let report = construct_mdst(&g, &EngineConfig::seeded(2));
        // The prior-art baseline needs Ω(n log n) = 80·7 ≈ 560 bits; ours must stay far
        // below (it is O(log n) + the O(log² n) NCA/redundant bookkeeping).
        assert!(
            report.max_register_bits < 300,
            "MDST registers too large: {} bits",
            report.max_register_bits
        );
    }

    #[test]
    fn round_count_is_polynomial_and_itemized() {
        let g = generators::workload(20, 0.25, 5);
        let report = construct_mdst(&g, &EngineConfig::seeded(5));
        let n = g.node_count() as u64;
        assert!(report.total_rounds <= n * n * n);
        assert!(report.rounds_for("tree construction") > 0);
        assert!(report.rounds_for("FR marking") > 0);
    }

    #[test]
    fn complete_graphs_get_low_degree_backbones() {
        let g = generators::complete(12);
        let report = construct_mdst(&g, &EngineConfig::seeded(1));
        assert!(report.legal);
        assert!(
            report.tree.max_degree() <= 3,
            "degree {}",
            report.tree.max_degree()
        );
    }

    #[test]
    fn works_under_the_adversarial_daemon() {
        let g = generators::workload(14, 0.3, 8);
        let config = EngineConfig::seeded(8).with_scheduler(SchedulerKind::Adversarial);
        let report = construct_mdst(&g, &config);
        assert!(report.legal);
    }
}
