//! Silent self-stabilizing spanning-tree construction (the paper's Instruction 1).
//!
//! This is a genuine guarded-rule algorithm on the state model: every node maintains a
//! register `(root, parent, dist, size)` on `O(log n)` bits. A node adopts the
//! lexicographically best offer `(root, dist)` available in its closed neighborhood
//! (preferring smaller root identities, then smaller distances, with its own identity as
//! the fallback root), bounded by `dist < n` so that spurious root identities left by
//! transient faults die out. Once the structure is stable, the `size` field converges
//! bottom-up to the subtree size, providing the size half of the redundant
//! proof-labeling scheme of §IV for free.
//!
//! The stabilized configuration is a BFS spanning tree rooted at the minimum-identity
//! node, with correct distances and subtree sizes, and no rule is enabled (the algorithm
//! is silent).

use rand::rngs::StdRng;
use rand::Rng;

use stst_graph::{Graph, Ident, NodeId};
use stst_runtime::bits::{BitReader, BitWriter};
use stst_runtime::codec::FieldSpec;
use stst_runtime::{Algorithm, Codec, CodecCtx, ParentPointer, RawView, Screen, View};

/// Register of the spanning-tree construction: `O(log n)` bits.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SpanningState {
    /// Identity of the claimed root.
    pub root: Ident,
    /// Identity of the parent neighbor, or `⊥` for a (claimed) root.
    pub parent: Option<Ident>,
    /// Claimed hop distance to the root.
    pub dist: u64,
    /// Claimed size of the subtree hanging below the node.
    pub size: u64,
}

impl Codec for SpanningState {
    fn encoded_bits(&self, ctx: &CodecCtx) -> usize {
        CodecCtx::uint_bits(self.root, ctx.ident_bits)
            + CodecCtx::opt_uint_bits(&self.parent, ctx.ident_bits)
            + CodecCtx::uint_bits(self.dist, ctx.count_bits)
            + CodecCtx::uint_bits(self.size, ctx.count_bits)
    }

    fn encode_into(&self, ctx: &CodecCtx, w: &mut BitWriter<'_>) {
        CodecCtx::write_uint(w, self.root, ctx.ident_bits);
        CodecCtx::write_opt_uint(w, &self.parent, ctx.ident_bits);
        CodecCtx::write_uint(w, self.dist, ctx.count_bits);
        CodecCtx::write_uint(w, self.size, ctx.count_bits);
    }

    fn decode_from(ctx: &CodecCtx, r: &mut BitReader<'_>) -> Self {
        SpanningState {
            root: CodecCtx::read_uint(r, ctx.ident_bits),
            parent: CodecCtx::read_opt_uint(r, ctx.ident_bits),
            dist: CodecCtx::read_uint(r, ctx.count_bits),
            size: CodecCtx::read_uint(r, ctx.count_bits),
        }
    }

    fn field_specs(ctx: &CodecCtx) -> Vec<FieldSpec> {
        // Fault-free shape with the parent present: escape + root payload, presence +
        // escape + parent payload, escape + dist payload, escape + size payload.
        let i = ctx.ident_bits;
        let c = ctx.count_bits;
        vec![
            FieldSpec {
                name: "root",
                offset: 1,
                width: i,
            },
            FieldSpec {
                name: "parent",
                offset: i + 3,
                width: i,
            },
            FieldSpec {
                name: "dist",
                offset: 2 * i + 4,
                width: c,
            },
            FieldSpec {
                name: "size",
                offset: 2 * i + c + 5,
                width: c,
            },
        ]
    }
}

impl ParentPointer for SpanningState {
    fn parent_ident(&self) -> Option<Ident> {
        self.parent
    }
}

/// The silent self-stabilizing spanning-tree (leader-elected BFS) construction.
#[derive(Clone, Copy, Debug, Default)]
pub struct MinIdSpanningTree;

impl MinIdSpanningTree {
    /// The best `(root, parent, dist)` offer available to the node: its own identity as
    /// a root, or any neighbor offering a smaller root identity within the distance
    /// bound `dist + 1 < n`.
    fn best_offer(view: &View<'_, SpanningState>) -> (Ident, Option<Ident>, u64) {
        let mut best: (Ident, u64, Option<Ident>) = (view.ident, 0, None);
        for nb in view.neighbors() {
            let offer_root = nb.state.root;
            let offer_dist = nb.state.dist + 1;
            if offer_root < view.ident && offer_dist < view.n as u64 {
                let candidate = (offer_root, offer_dist, Some(nb.ident));
                if (candidate.0, candidate.1, candidate.2) < (best.0, best.1, best.2) {
                    best = candidate;
                }
            }
        }
        (best.0, best.2, best.1)
    }

    /// The subtree size implied by the current neighborhood: one plus the sizes of the
    /// neighbors that designate this node as their parent under the same root.
    fn implied_size(view: &View<'_, SpanningState>, root: Ident) -> u64 {
        1 + view
            .neighbors()
            .filter(|nb| nb.state.parent == Some(view.ident) && nb.state.root == root)
            .map(|nb| nb.state.size)
            .sum::<u64>()
    }
}

impl Algorithm for MinIdSpanningTree {
    type State = SpanningState;

    fn name(&self) -> &str {
        "silent min-identity spanning tree"
    }

    fn arbitrary_state(&self, graph: &Graph, _node: NodeId, rng: &mut StdRng) -> SpanningState {
        let n = graph.node_count() as u64;
        let parent = match rng.gen_range(0..3) {
            0 => None,
            // Possibly a non-neighbor or non-existent identity: the rules must cope.
            _ => Some(rng.gen_range(0..=2 * n.max(1))),
        };
        SpanningState {
            root: rng.gen_range(0..=2 * n.max(1)),
            parent,
            dist: rng.gen_range(0..=n + 1),
            size: rng.gen_range(0..=n + 1),
        }
    }

    fn step(&self, view: &View<'_, SpanningState>) -> Option<SpanningState> {
        let (root, parent, dist) = Self::best_offer(view);
        let size = Self::implied_size(view, root);
        let desired = SpanningState {
            root,
            parent,
            dist,
            size,
        };
        (desired != *view.state).then_some(desired)
    }

    /// Decode-free mirror of [`MinIdSpanningTree::step`]: two extraction passes over
    /// the packed neighborhood (one replaying [`MinIdSpanningTree::best_offer`], one
    /// replaying [`MinIdSpanningTree::implied_size`] under the chosen root — the size
    /// sum depends on the root picked by the first pass, exactly as in `step`). Any
    /// fired escape bit aborts to `Unknown` and the full-decode path takes over.
    fn guard_screen(&self, raw: &RawView<'_>) -> Screen<SpanningState> {
        let ctx = raw.ctx();
        let mut own = raw.own_reader();
        let Some(root) = own.uint(ctx.ident_bits) else {
            return Screen::Unknown;
        };
        let Some(parent) = own.opt_uint(ctx.ident_bits) else {
            return Screen::Unknown;
        };
        let Some(dist) = own.uint(ctx.count_bits) else {
            return Screen::Unknown;
        };
        let Some(size) = own.uint(ctx.count_bits) else {
            return Screen::Unknown;
        };
        let current = SpanningState {
            root,
            parent,
            dist,
            size,
        };
        let n = raw.n as u64;
        // Pass 1 — best offer. Extracted fields are un-escaped (< 2^count_bits), so
        // the +1 cannot wrap; the candidate/incumbent tuples have exactly the types
        // `best_offer` compares, `Option` ordering included.
        let mut best: (Ident, u64, Option<Ident>) = (raw.ident, 0, None);
        for port in 0..raw.degree() {
            let mut r = raw.reader_of(port);
            let Some(nb_root) = r.uint(ctx.ident_bits) else {
                return Screen::Unknown;
            };
            if r.opt_uint(ctx.ident_bits).is_none() {
                return Screen::Unknown;
            }
            let Some(nb_dist) = r.uint(ctx.count_bits) else {
                return Screen::Unknown;
            };
            let offer_dist = nb_dist + 1;
            if nb_root < raw.ident && offer_dist < n {
                let candidate = (nb_root, offer_dist, Some(raw.neighbor(port).ident));
                if candidate < best {
                    best = candidate;
                }
            }
        }
        // Pass 2 — implied size under the chosen root.
        let mut implied = 1u64;
        for port in 0..raw.degree() {
            let mut r = raw.reader_of(port);
            let Some(nb_root) = r.uint(ctx.ident_bits) else {
                return Screen::Unknown;
            };
            let Some(nb_parent) = r.opt_uint(ctx.ident_bits) else {
                return Screen::Unknown;
            };
            if r.uint(ctx.count_bits).is_none() {
                return Screen::Unknown; // skip over dist
            }
            let Some(nb_size) = r.uint(ctx.count_bits) else {
                return Screen::Unknown;
            };
            if nb_parent == Some(raw.ident) && nb_root == best.0 {
                implied += nb_size;
            }
        }
        let desired = SpanningState {
            root: best.0,
            parent: best.2,
            dist: best.1,
            size: implied,
        };
        if desired == current {
            Screen::Disabled
        } else {
            Screen::Enabled(desired)
        }
    }

    fn is_legal(&self, graph: &Graph, states: &[SpanningState]) -> bool {
        // The parent pointers must encode a spanning tree rooted at the minimum-identity
        // node, with exact distances and subtree sizes.
        let Ok(tree) = stst_runtime::executor::parent_pointer_tree(graph, states) else {
            return false;
        };
        if tree.root() != graph.min_ident_node() {
            return false;
        }
        let root_ident = graph.ident(tree.root());
        let depths = tree.depths();
        let sizes = tree.subtree_sizes();
        graph.nodes().all(|v| {
            let s = &states[v.0];
            s.root == root_ident && s.dist == depths[v.0] as u64 && s.size == sizes[v.0] as u64
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stst_graph::bfs::is_bfs_tree;
    use stst_graph::generators;
    use stst_runtime::{Executor, ExecutorConfig, SchedulerKind};

    fn converge(
        graph: &Graph,
        seed: u64,
        scheduler: SchedulerKind,
    ) -> (stst_graph::Tree, stst_runtime::Quiescence, usize) {
        let config = ExecutorConfig::with_scheduler(seed, scheduler);
        let mut exec = Executor::from_arbitrary(graph, MinIdSpanningTree, config);
        let q = exec.run_to_quiescence(4_000_000).expect("must converge");
        let bits = exec.peak_space_report().max_bits;
        let tree = exec.extract_tree().expect("stabilized on a spanning tree");
        (tree, q, bits)
    }

    #[test]
    fn stabilizes_on_a_bfs_tree_rooted_at_the_min_identity_node() {
        for seed in 0..4 {
            let g = generators::workload(24, 0.15, seed);
            let (tree, q, _) = converge(&g, seed, SchedulerKind::Central);
            assert!(q.silent);
            assert!(q.legal, "seed {seed}: final configuration must be legal");
            assert_eq!(tree.root(), g.min_ident_node());
            assert!(
                is_bfs_tree(&g, &tree),
                "min-offer adoption builds a BFS tree"
            );
        }
    }

    #[test]
    fn every_daemon_converges_to_a_legal_configuration() {
        let g = generators::workload(16, 0.2, 7);
        for kind in SchedulerKind::all() {
            let (_, q, _) = converge(&g, 3, kind);
            assert!(q.legal, "daemon {kind} must converge");
        }
    }

    #[test]
    fn registers_stay_logarithmic() {
        let g = generators::workload(96, 0.05, 2);
        let (_, _, bits) = converge(&g, 2, SchedulerKind::Central);
        // 4 fields of O(log n) bits each (identities go up to 2n during faults).
        assert!(bits <= 4 * (8 + 2) + 2, "register too large: {bits} bits");
    }

    #[test]
    fn convergence_rounds_are_moderate() {
        // The paper's framework only needs poly(n) rounds; this construction needs O(n).
        for (n, p) in [(16usize, 0.2), (48, 0.1)] {
            let g = generators::workload(n, p, 11);
            let (_, q, _) = converge(&g, 5, SchedulerKind::Synchronous);
            assert!(
                q.rounds <= 3 * n as u64 + 10,
                "n = {n}: took {} rounds, expected O(n)",
                q.rounds
            );
        }
    }

    #[test]
    fn codec_round_trips_across_the_reachable_and_garbage_state_space() {
        use rand::SeedableRng;
        use stst_runtime::codec::assert_codec_roundtrip;
        let g = generators::workload(28, 0.2, 4);
        let ctx = stst_runtime::CodecCtx::for_graph(&g);
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        for v in g.nodes() {
            assert_codec_roundtrip(&ctx, &MinIdSpanningTree.arbitrary_state(&g, v, &mut rng));
        }
        for state in [
            SpanningState {
                root: 0,
                parent: None,
                dist: 0,
                size: 0,
            },
            SpanningState {
                root: u64::MAX,
                parent: Some(u64::MAX),
                dist: u64::MAX,
                size: u64::MAX,
            },
        ] {
            assert_codec_roundtrip(&ctx, &state);
        }
    }

    #[test]
    fn field_extraction_matches_decoding_for_random_and_garbage_registers() {
        use rand::SeedableRng;
        use stst_runtime::codec::FieldReader;
        let g = generators::workload(28, 0.2, 4);
        let ctx = stst_runtime::CodecCtx::for_graph(&g);
        let mut rng = rand::rngs::StdRng::seed_from_u64(23);
        let mut states: Vec<SpanningState> = g
            .nodes()
            .map(|v| MinIdSpanningTree.arbitrary_state(&g, v, &mut rng))
            .collect();
        states.push(SpanningState {
            root: u64::MAX, // escapes the ident field
            parent: Some(1),
            dist: 2,
            size: 3,
        });
        states.push(SpanningState {
            root: 4,
            parent: Some(5),
            dist: u64::MAX, // escapes the count field
            size: 6,
        });
        let specs = SpanningState::field_specs(&ctx);
        assert_eq!(
            specs.iter().map(|s| s.name).collect::<Vec<_>>(),
            ["root", "parent", "dist", "size"]
        );
        let ident_max = 1u64 << ctx.ident_bits;
        let count_max = 1u64 << ctx.count_bits;
        for state in &states {
            let mut words = Vec::new();
            let mut w = BitWriter::new(&mut words, 0);
            state.encode_into(&ctx, &mut w);
            let mut f = FieldReader::new(&words, 0);
            // Walk the fields in encoding order; each extraction must either equal the
            // decoded struct field or refuse exactly when the field escaped.
            let root = f.uint(ctx.ident_bits);
            assert_eq!(
                root,
                (state.root < ident_max).then_some(state.root),
                "{state:?}"
            );
            let parent = f.opt_uint(ctx.ident_bits);
            if state.parent.is_some_and(|p| p >= ident_max) {
                assert_eq!(parent, None, "{state:?}");
            } else {
                assert_eq!(parent, Some(state.parent), "{state:?}");
            }
            let dist = f.uint(ctx.count_bits);
            assert_eq!(
                dist,
                (state.dist < count_max).then_some(state.dist),
                "{state:?}"
            );
            let size = f.uint(ctx.count_bits);
            assert_eq!(
                size,
                (state.size < count_max).then_some(state.size),
                "{state:?}"
            );
            // Fault-free fully-present shape: static FieldSpec offsets are valid.
            if let Some(p) = state.parent {
                if root.is_some()
                    && parent == Some(state.parent)
                    && dist.is_some()
                    && size.is_some()
                {
                    for (spec, value) in specs.iter().zip([state.root, p, state.dist, state.size]) {
                        let mut r = BitReader::new(&words, spec.offset as u64);
                        assert_eq!(
                            r.read(spec.width as usize),
                            value,
                            "{}: {state:?}",
                            spec.name
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn recovers_after_corrupting_registers() {
        let g = generators::workload(20, 0.2, 9);
        let config = ExecutorConfig::seeded(1);
        let mut exec = Executor::from_arbitrary(&g, MinIdSpanningTree, config);
        exec.run_to_quiescence(2_000_000).unwrap();
        assert!(exec.is_quiescent());
        // Corrupt half of the registers, including (possibly) the root's.
        exec.corrupt_random_nodes(10);
        let q = exec.run_to_quiescence(2_000_000).expect("must re-converge");
        assert!(q.legal, "recovery must restore a legal configuration");
    }

    #[test]
    fn fake_small_root_identities_die_out() {
        // Plant a configuration where every node claims a root identity smaller than any
        // real identity: the distance bound must flush it out.
        let g = generators::workload(12, 0.3, 4);
        let states: Vec<SpanningState> = g
            .nodes()
            .map(|v| SpanningState {
                root: 0, // no node has identity 0
                parent: g.neighbors(v).first().map(|&(w, _)| g.ident(w)),
                dist: 1,
                size: 1,
            })
            .collect();
        let mut exec =
            Executor::with_states(&g, MinIdSpanningTree, states, ExecutorConfig::seeded(3));
        let q = exec.run_to_quiescence(2_000_000).expect("must converge");
        assert!(q.legal);
        let tree = exec.extract_tree().unwrap();
        assert_eq!(tree.root(), g.min_ident_node());
    }

    #[test]
    fn the_canonical_legal_configuration_is_silent_immediately() {
        // The fixed point of the rules is the *canonical* BFS tree: every node's parent
        // is its smallest-identity neighbor among those one hop closer to the root.
        let g = generators::workload(18, 0.2, 6);
        let root = g.min_ident_node();
        let dist = stst_graph::bfs::distances_from(&g, root);
        let parents: Vec<Option<NodeId>> = g
            .nodes()
            .map(|v| {
                if v == root {
                    None
                } else {
                    g.neighbors(v)
                        .iter()
                        .map(|&(w, _)| w)
                        .filter(|w| dist[w.0] + 1 == dist[v.0])
                        .min_by_key(|&w| g.ident(w))
                }
            })
            .collect();
        let tree = stst_graph::Tree::from_parents_in(&g, parents).unwrap();
        let depths = tree.depths();
        let sizes = tree.subtree_sizes();
        let root_ident = g.ident(root);
        let states: Vec<SpanningState> = g
            .nodes()
            .map(|v| SpanningState {
                root: root_ident,
                parent: tree.parent(v).map(|p| g.ident(p)),
                dist: depths[v.0] as u64,
                size: sizes[v.0] as u64,
            })
            .collect();
        let exec = Executor::with_states(&g, MinIdSpanningTree, states, ExecutorConfig::seeded(0));
        assert!(
            exec.is_quiescent(),
            "the canonical legal configuration must already be silent"
        );
    }
}
