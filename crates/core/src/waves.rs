//! Round accounting for broadcast / convergecast waves over the current tree.
//!
//! The paper composes its constructions out of waves over the current spanning tree
//! (label construction, fundamental-cycle searches, pruning/relabeling during switches).
//! Each wave costs a number of rounds proportional to the height of the tree (or the
//! length of the affected path); the [`RoundLedger`] records every charge with its
//! provenance so experiment reports can break the total down by phase.

use std::collections::HashMap;

use stst_graph::Tree;

/// Record of rounds charged to the different phases of a composed run.
///
/// Phase labels are interned `&'static str`s: the hot improvement loop charges a wave
/// per label repair and per switch, and allocating a `String` per charge (as the seed
/// did) showed up in profiles at composition scale. Grouping is maintained as a
/// first-seen index at charge time — `O(1)` per charge and no per-entry storage —
/// instead of the seed's `O(phases²)` linear re-scan over an itemized entry list that
/// nothing consumed.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RoundLedger {
    /// First-seen order of distinct phase labels, with their running totals.
    grouped: Vec<(&'static str, u64)>,
    /// Label → index into `grouped`.
    index: HashMap<&'static str, usize>,
    /// Number of individual charges recorded.
    charges: usize,
    total: u64,
}

impl RoundLedger {
    /// An empty ledger.
    pub fn new() -> Self {
        RoundLedger::default()
    }

    /// Records `rounds` rounds spent in the phase `label`.
    pub fn charge(&mut self, label: &'static str, rounds: u64) {
        self.charges += 1;
        self.total += rounds;
        match self.index.get(label) {
            Some(&i) => self.grouped[i].1 += rounds,
            None => {
                self.index.insert(label, self.grouped.len());
                self.grouped.push((label, rounds));
            }
        }
    }

    /// Total rounds charged.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Number of individual charges recorded.
    pub fn charges(&self) -> usize {
        self.charges
    }

    /// The entries grouped by label, in first-seen order (for compact reports).
    pub fn by_phase(&self) -> Vec<(&'static str, u64)> {
        self.grouped.clone()
    }

    /// Rebuilds a ledger from checkpointed grouped entries and a charge count (the
    /// engine's snapshot restore path). The total is recomputed from the entries, so a
    /// restored ledger satisfies the same invariant as a live one:
    /// `total == Σ grouped`.
    pub fn restore(entries: Vec<(&'static str, u64)>, charges: usize) -> Self {
        let total = entries.iter().map(|&(_, r)| r).sum();
        let index = entries
            .iter()
            .enumerate()
            .map(|(i, &(label, _))| (label, i))
            .collect();
        RoundLedger {
            grouped: entries,
            index,
            charges,
            total,
        }
    }
}

/// Rounds for one top-down broadcast wave over `tree` (the root informs the leaves):
/// one round per level.
pub fn broadcast_rounds(tree: &Tree) -> u64 {
    tree.height() as u64 + 1
}

/// Rounds for one bottom-up convergecast wave over `tree` (the leaves inform the root).
pub fn convergecast_rounds(tree: &Tree) -> u64 {
    tree.height() as u64 + 1
}

/// Rounds for constructing the Borůvka-trace fragment labels of §VI on `tree`: each of
/// the `levels` levels needs a convergecast (minimum outgoing edge per fragment) and a
/// broadcast (fragment identity and chosen edge).
pub fn fragment_labeling_rounds(tree: &Tree, levels: usize) -> u64 {
    (convergecast_rounds(tree) + broadcast_rounds(tree)) * levels as u64
}

/// Rounds for constructing the NCA labels of §V on `tree`: a convergecast computing
/// subtree sizes (heavy-child selection) followed by a broadcast extending labels
/// downward.
pub fn nca_labeling_rounds(tree: &Tree) -> u64 {
    convergecast_rounds(tree) + broadcast_rounds(tree)
}

/// Rounds for repairing a label family after a loop-free switch (Lemmas 3.1/4.1 charge
/// repair per wave *on the affected region*): one downward and one upward wave over the
/// re-hung subtree plus one round per hop of the reparenting path and of the root-path
/// patches.
pub fn repair_rounds(dirty_subtree_height: u64, path_len: u64) -> u64 {
    2 * (dirty_subtree_height + 1) + path_len
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ledger_totals_and_grouping() {
        let mut ledger = RoundLedger::new();
        ledger.charge("label", 10);
        ledger.charge("switch", 5);
        ledger.charge("label", 7);
        assert_eq!(ledger.total(), 22);
        assert_eq!(ledger.charges(), 3);
        assert_eq!(ledger.by_phase(), vec![("label", 17), ("switch", 5)]);
    }

    #[test]
    fn grouping_preserves_first_seen_order_across_many_phases() {
        let mut ledger = RoundLedger::new();
        let labels = ["a", "b", "c", "d"];
        for round in 0..100u64 {
            ledger.charge(labels[(round % 4) as usize], round);
        }
        let grouped = ledger.by_phase();
        assert_eq!(grouped.len(), 4);
        assert_eq!(grouped.iter().map(|(l, _)| *l).collect::<Vec<_>>(), labels);
        assert_eq!(grouped.iter().map(|(_, r)| r).sum::<u64>(), ledger.total());
    }

    #[test]
    fn repair_rounds_scale_with_the_dirty_region() {
        assert_eq!(repair_rounds(0, 1), 3);
        assert_eq!(repair_rounds(4, 3), 13);
    }

    #[test]
    fn wave_costs_scale_with_height() {
        let path = Tree::path(10);
        assert_eq!(broadcast_rounds(&path), 10);
        assert_eq!(convergecast_rounds(&path), 10);
        assert_eq!(nca_labeling_rounds(&path), 20);
        assert_eq!(fragment_labeling_rounds(&path, 4), 80);
        let singleton = Tree::from_parents(vec![None]).unwrap();
        assert_eq!(broadcast_rounds(&singleton), 1);
    }
}
