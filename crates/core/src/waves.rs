//! Round accounting for broadcast / convergecast waves over the current tree.
//!
//! The paper composes its constructions out of waves over the current spanning tree
//! (label construction, fundamental-cycle searches, pruning/relabeling during switches).
//! Each wave costs a number of rounds proportional to the height of the tree (or the
//! length of the affected path); the [`RoundLedger`] records every charge with its
//! provenance so experiment reports can break the total down by phase.

use stst_graph::Tree;

/// Itemized record of rounds charged to the different phases of a composed run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RoundLedger {
    entries: Vec<(String, u64)>,
}

impl RoundLedger {
    /// An empty ledger.
    pub fn new() -> Self {
        RoundLedger::default()
    }

    /// Records `rounds` rounds spent in the phase `label`.
    pub fn charge(&mut self, label: impl Into<String>, rounds: u64) {
        self.entries.push((label.into(), rounds));
    }

    /// Total rounds charged.
    pub fn total(&self) -> u64 {
        self.entries.iter().map(|(_, r)| r).sum()
    }

    /// The itemized entries, in charge order.
    pub fn entries(&self) -> &[(String, u64)] {
        &self.entries
    }

    /// Sums the entries grouped by label (for compact reports).
    pub fn by_phase(&self) -> Vec<(String, u64)> {
        let mut grouped: Vec<(String, u64)> = Vec::new();
        for (label, rounds) in &self.entries {
            match grouped.iter_mut().find(|(l, _)| l == label) {
                Some((_, total)) => *total += rounds,
                None => grouped.push((label.clone(), *rounds)),
            }
        }
        grouped
    }
}

/// Rounds for one top-down broadcast wave over `tree` (the root informs the leaves):
/// one round per level.
pub fn broadcast_rounds(tree: &Tree) -> u64 {
    tree.height() as u64 + 1
}

/// Rounds for one bottom-up convergecast wave over `tree` (the leaves inform the root).
pub fn convergecast_rounds(tree: &Tree) -> u64 {
    tree.height() as u64 + 1
}

/// Rounds for constructing the Borůvka-trace fragment labels of §VI on `tree`: each of
/// the `levels` levels needs a convergecast (minimum outgoing edge per fragment) and a
/// broadcast (fragment identity and chosen edge).
pub fn fragment_labeling_rounds(tree: &Tree, levels: usize) -> u64 {
    (convergecast_rounds(tree) + broadcast_rounds(tree)) * levels as u64
}

/// Rounds for constructing the NCA labels of §V on `tree`: a convergecast computing
/// subtree sizes (heavy-child selection) followed by a broadcast extending labels
/// downward.
pub fn nca_labeling_rounds(tree: &Tree) -> u64 {
    convergecast_rounds(tree) + broadcast_rounds(tree)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ledger_totals_and_grouping() {
        let mut ledger = RoundLedger::new();
        ledger.charge("label", 10);
        ledger.charge("switch", 5);
        ledger.charge("label", 7);
        assert_eq!(ledger.total(), 22);
        assert_eq!(ledger.entries().len(), 3);
        assert_eq!(
            ledger.by_phase(),
            vec![("label".to_string(), 17), ("switch".to_string(), 5)]
        );
    }

    #[test]
    fn wave_costs_scale_with_height() {
        let path = Tree::path(10);
        assert_eq!(broadcast_rounds(&path), 10);
        assert_eq!(convergecast_rounds(&path), 10);
        assert_eq!(nca_labeling_rounds(&path), 20);
        assert_eq!(fragment_labeling_rounds(&path, 4), 80);
        let singleton = Tree::from_parents(vec![None]).unwrap();
        assert_eq!(broadcast_rounds(&singleton), 1);
    }
}
