//! The loop-free edge-switch module of §IV.
//!
//! Replacing a tree edge `f` by a non-tree edge `e` of its fundamental cycle is done as
//! a sequence of *local* switches along the tree path between `e` and `f` (Fig. 1a):
//! each local switch reparents one node onto its predecessor, moving the "gap" one hop
//! closer to `f`; after the last one, `f` has left the tree. Every intermediate
//! configuration is a spanning tree (**loop-freedom**).
//!
//! Each local switch follows the three phases of Fig. 1b: a *pruning* phase degrades the
//! redundant labels to `(d, ⊥)` along the root paths of the old and new parents and to
//! `(⊥, s)` inside the subtree of the reparenting node, a *switching* phase changes the
//! parent pointer (and the node's distance) in one atomic step, and a *relabeling* phase
//! restores full labels for the new tree. By Lemma 4.1 (malleability), the verifier of
//! the redundant scheme accepts every one of these configurations, so the switch never
//! raises a false alarm.
//!
//! Round accounting: the paper obtains `O(n)` rounds for the whole `T ← T + e − f` by
//! pipelining the waves of consecutive local switches. We charge the pipelined cost —
//! one initial pruning wave, one round per local switch, one final relabeling wave, plus
//! one round of local fix-up per switch — which is `O(height(T) + |cycle|) = O(n)`;
//! the per-stage configurations generated for verification follow the unpipelined
//! description above.

use stst_graph::{EdgeId, Graph, NodeId, Tree};
use stst_labeling::redundant::{RedundantLabel, RedundantScheme};
use stst_labeling::scheme::ProofLabelingScheme;

use crate::waves;

/// One intermediate configuration of a switch: the current tree and the (possibly
/// pruned) redundant labels exposed by the nodes.
#[derive(Clone, Debug)]
pub struct SwitchStage {
    /// Short description of the stage (for traces).
    pub description: String,
    /// The spanning tree at this stage.
    pub tree: Tree,
    /// The redundant labels exposed at this stage.
    pub labels: Vec<RedundantLabel>,
}

/// The outcome of a loop-free switch `T ← T + e − f`.
#[derive(Clone, Debug)]
pub struct SwitchOutcome {
    /// The resulting tree (the edge set of `T + e − f`, rooted at the original root).
    pub tree: Tree,
    /// Every intermediate configuration, in order (three stages per local switch).
    pub stages: Vec<SwitchStage>,
    /// Number of local switches performed (the length of the reparenting path).
    pub local_switches: usize,
    /// Rounds charged to the switch (pipelined estimate, `O(n)`).
    pub rounds: u64,
}

/// Builds the three stages of one *local* switch: node `v` leaves its parent `w` for the
/// new parent `w'` (which must not be a descendant of `v`). Returns the stages and the
/// resulting tree.
fn local_switch_stages(
    graph: &Graph,
    tree: &Tree,
    v: NodeId,
    new_parent: NodeId,
) -> (Vec<SwitchStage>, Tree) {
    let scheme = RedundantScheme;
    let full = scheme.prove(graph, tree);
    let old_parent = tree
        .parent(v)
        .expect("the reparenting node is not the root");

    // Phase 1: pruning. Sizes become stale on the root paths of both parents; distances
    // become stale strictly below v.
    let mut pruned = full.clone();
    for anchor in [old_parent, new_parent] {
        for x in tree.path_to_root(anchor) {
            pruned[x.0] = pruned[x.0].pruned_to_distance();
        }
    }
    let children = tree.children_table();
    let mut stack: Vec<NodeId> = children[v.0].clone();
    while let Some(x) = stack.pop() {
        pruned[x.0] = pruned[x.0].pruned_to_size();
        stack.extend(children[x.0].iter().copied());
    }
    let prune_stage = SwitchStage {
        description: format!("pruning around the local switch of {v}"),
        tree: tree.clone(),
        labels: pruned.clone(),
    };

    // Phase 2: the switch proper. v adopts new_parent and simultaneously updates its
    // distance to dist(new_parent) + 1 (its subtree size is unchanged).
    let mut parents = tree.parents().to_vec();
    parents[v.0] = Some(new_parent);
    let switched_tree =
        Tree::from_parents(parents).expect("a local switch onto a non-descendant keeps a tree");
    let mut switched_labels = pruned.clone();
    let new_parent_dist = pruned[new_parent.0]
        .dist
        .expect("root-path pruning keeps distances");
    switched_labels[v.0] = RedundantLabel {
        root: switched_labels[v.0].root,
        dist: Some(new_parent_dist + 1),
        size: switched_labels[v.0].size,
    };
    let switch_stage = SwitchStage {
        description: format!("local switch: {v} reparents from {old_parent} to {new_parent}"),
        tree: switched_tree.clone(),
        labels: switched_labels,
    };

    // Phase 3: relabeling — full labels of the new tree.
    let relabel_stage = SwitchStage {
        description: format!("relabeling after the local switch of {v}"),
        tree: switched_tree.clone(),
        labels: scheme.prove(graph, &switched_tree),
    };

    (
        vec![prune_stage, switch_stage, relabel_stage],
        switched_tree,
    )
}

/// Performs the loop-free switch `T ← T + e − f` with malleable-label maintenance.
///
/// # Panics
///
/// Panics if `add` is a tree edge or `remove` does not lie on the fundamental cycle of
/// `T + add`.
pub fn loop_free_switch(graph: &Graph, tree: &Tree, add: EdgeId, remove: EdgeId) -> SwitchOutcome {
    let cycle_edges = tree.fundamental_cycle_tree_edges(graph, add);
    assert!(
        cycle_edges.contains(&remove),
        "the removed edge must lie on the fundamental cycle of the added edge"
    );
    let add_edge = graph.edge(add);
    let remove_edge = graph.edge(remove);
    // The child-side endpoint of the removed edge roots the subtree that gets detached.
    let child_side = if tree.parent(remove_edge.u) == Some(remove_edge.v) {
        remove_edge.u
    } else {
        remove_edge.v
    };
    let in_detached_subtree = |x: NodeId| tree.path_to_root(x).contains(&child_side);
    let (inside, outside) = if in_detached_subtree(add_edge.u) {
        (add_edge.u, add_edge.v)
    } else {
        (add_edge.v, add_edge.u)
    };
    // Reparenting path: from the endpoint of `e` inside the detached subtree up to the
    // child side of `f`.
    let mut path = Vec::new();
    let mut cur = inside;
    loop {
        path.push(cur);
        if cur == child_side {
            break;
        }
        cur = tree
            .parent(cur)
            .expect("the child side of f is an ancestor of the inside endpoint of e");
    }

    let mut stages = Vec::new();
    let mut current = tree.clone();
    let mut new_parent = outside;
    for &v in &path {
        let (local_stages, next) = local_switch_stages(graph, &current, v, new_parent);
        stages.extend(local_stages);
        current = next;
        new_parent = v;
    }

    // Pipelined round estimate: one pruning wave and one relabeling wave over the tree,
    // plus two rounds (switch + local fix-up) per local switch.
    let rounds = waves::broadcast_rounds(tree)
        + waves::convergecast_rounds(tree)
        + 2 * path.len() as u64
        + waves::broadcast_rounds(&current)
        + waves::convergecast_rounds(&current);

    SwitchOutcome {
        tree: current,
        stages,
        local_switches: path.len(),
        rounds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stst_graph::bfs::bfs_tree;
    use stst_graph::generators;
    use stst_labeling::scheme::Instance;

    fn some_non_tree_edge(graph: &Graph, tree: &Tree, skip: usize) -> EdgeId {
        let candidates: Vec<EdgeId> = graph
            .edge_ids()
            .filter(|&e| {
                let ed = graph.edge(e);
                !tree.contains_edge(ed.u, ed.v)
            })
            .collect();
        candidates[skip % candidates.len()]
    }

    #[test]
    fn switch_result_matches_the_atomic_swap() {
        for seed in 0..5 {
            let g = generators::workload(22, 0.25, seed);
            let t = bfs_tree(&g, g.min_ident_node());
            let e = some_non_tree_edge(&g, &t, seed as usize);
            let f = *t.fundamental_cycle_tree_edges(&g, e).last().unwrap();
            let outcome = loop_free_switch(&g, &t, e, f);
            let expected = t.with_swap(&g, e, f);
            let mut got = outcome.tree.edge_ids_in(&g);
            let mut want = expected.edge_ids_in(&g);
            got.sort();
            want.sort();
            assert_eq!(got, want, "seed {seed}");
            assert!(outcome.local_switches >= 1);
        }
    }

    #[test]
    fn every_intermediate_configuration_is_a_spanning_tree() {
        let g = generators::workload(30, 0.2, 3);
        let t = bfs_tree(&g, g.min_ident_node());
        let e = some_non_tree_edge(&g, &t, 1);
        let f = t.fundamental_cycle_tree_edges(&g, e)[0];
        let outcome = loop_free_switch(&g, &t, e, f);
        for stage in &outcome.stages {
            assert!(
                stage.tree.is_spanning_tree_of(&g),
                "loop-freedom violated at stage '{}'",
                stage.description
            );
        }
    }

    #[test]
    fn the_malleable_scheme_never_raises_an_alarm_during_the_switch() {
        for seed in 0..4 {
            let g = generators::workload(18, 0.3, seed);
            let t = bfs_tree(&g, g.min_ident_node());
            let e = some_non_tree_edge(&g, &t, seed as usize);
            let cycle = t.fundamental_cycle_tree_edges(&g, e);
            let f = cycle[cycle.len() / 2];
            let outcome = loop_free_switch(&g, &t, e, f);
            for stage in &outcome.stages {
                let inst = Instance {
                    graph: &g,
                    parents: stage.tree.parents(),
                };
                let verdict = RedundantScheme.verify_all(&inst, &stage.labels);
                assert!(
                    verdict.accepted(),
                    "seed {seed}: stage '{}' rejected at {:?}",
                    stage.description,
                    verdict.rejecting
                );
            }
        }
    }

    #[test]
    fn rounds_are_linear_in_the_tree_size() {
        let g = generators::ring(64);
        let t = bfs_tree(&g, stst_graph::NodeId(0));
        let e = some_non_tree_edge(&g, &t, 0);
        let f = t.fundamental_cycle_tree_edges(&g, e)[10];
        let outcome = loop_free_switch(&g, &t, e, f);
        assert!(
            outcome.rounds <= 8 * 64,
            "a switch must cost O(n) rounds, got {}",
            outcome.rounds
        );
        assert!(outcome.rounds >= outcome.local_switches as u64);
    }

    #[test]
    fn single_hop_switch_degenerates_gracefully() {
        // When f is incident to the inside endpoint of e, a single local switch suffices.
        let g = generators::ring(8);
        let t = bfs_tree(&g, stst_graph::NodeId(0));
        let e = some_non_tree_edge(&g, &t, 0);
        let ed = g.edge(e);
        // Pick f incident to whichever endpoint of e is deeper in the tree.
        let depths = t.depths();
        let deep = if depths[ed.u.0] > depths[ed.v.0] {
            ed.u
        } else {
            ed.v
        };
        let f = g.edge_between(deep, t.parent(deep).unwrap()).unwrap();
        let outcome = loop_free_switch(&g, &t, e, f);
        assert_eq!(outcome.local_switches, 1);
        assert_eq!(outcome.stages.len(), 3);
    }
}
