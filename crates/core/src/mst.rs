//! Corollary 6.1: the silent self-stabilizing MST construction (Algorithm 2, the
//! PLS-guided version of Borůvka's algorithm).
//!
//! Composition, exactly as in §VI:
//!
//! 1. build a spanning tree with the guarded-rule construction of
//!    [`crate::spanning::MinIdSpanningTree`] (Instruction 1 of Algorithm 1);
//! 2. construct the Borůvka-trace fragment labels on the current tree (`O(log² n)` bits
//!    per node) and the NCA labels used to navigate fundamental cycles;
//! 3. while some node detects that its fragment's recorded outgoing edge is not the
//!    lightest outgoing edge in the graph (`φ(T) > 0`), add that lightest edge `e`,
//!    remove the heaviest edge `f` of the fundamental cycle `T + e` (red rule) through
//!    the loop-free switch module of §IV, and update the labels;
//! 4. when `φ(T) = 0` the tree is a minimum spanning tree, all labels are consistent,
//!    and no rule is enabled: the construction is silent.
//!
//! Every wave is charged its measured round cost on the current tree; the register bound
//! is the measured maximum over all phases (dominated by the `O(log² n)`-bit fragment
//! labels, which is optimal for silent MST by the Korman–Kutten lower bound).

use stst_graph::Graph;
use stst_runtime::{Executor, ExecutorConfig};

use crate::engine::{CompositionEngine, EngineTask};
use crate::framework::{ConstructionReport, EngineConfig};
use crate::spanning::MinIdSpanningTree;

/// Runs the silent self-stabilizing MST construction from an arbitrary initial
/// configuration and returns the measured report.
///
/// This is a thin wrapper around [`CompositionEngine`] run to silence; use the engine
/// directly for phase-step control, incremental-vs-from-scratch comparisons
/// ([`crate::framework::Relabel`]) or wave-boundary fault injection.
///
/// # Panics
///
/// Panics if the guarded-rule spanning-tree phase does not converge within the
/// configured step budget (which, for connected graphs, indicates a budget far too small
/// for the graph size).
pub fn construct_mst(graph: &Graph, config: &EngineConfig) -> ConstructionReport {
    CompositionEngine::new(graph, EngineTask::Mst, *config).run()
}

/// Convenience wrapper: the peak register size (in bits) of one MST construction run —
/// the quantity compared against the `Θ(log² n)` optimum in experiment E5.
pub fn mst_register_bits(graph: &Graph, seed: u64) -> usize {
    construct_mst(graph, &EngineConfig::seeded(seed)).max_register_bits
}

/// Sanity helper used by experiments: the measured spanning-tree-phase register size
/// alone (the `O(log n)`-bit part of the budget).
pub fn spanning_phase_register_bits(graph: &Graph, seed: u64) -> usize {
    let mut exec = Executor::from_arbitrary(graph, MinIdSpanningTree, ExecutorConfig::seeded(seed));
    exec.run_to_quiescence(5_000_000)
        .expect("spanning phase converges");
    exec.space_report().max_bits
}

#[cfg(test)]
mod tests {
    use super::*;
    use stst_graph::generators;
    use stst_graph::mst::kruskal;
    use stst_runtime::SchedulerKind;

    #[test]
    fn produces_minimum_spanning_trees() {
        for seed in 0..4 {
            let g = generators::workload(20, 0.25, seed);
            let report = construct_mst(&g, &EngineConfig::seeded(seed));
            assert!(report.legal, "seed {seed}");
            let opt = kruskal(&g).unwrap().total_weight(&g);
            assert_eq!(report.tree.total_weight(&g), opt, "seed {seed}");
        }
    }

    #[test]
    fn round_count_is_polynomial_and_itemized() {
        let g = generators::workload(24, 0.2, 7);
        let report = construct_mst(&g, &EngineConfig::seeded(7));
        let n = g.node_count() as u64;
        // Very generous poly(n) sanity bound: n³ rounds.
        assert!(
            report.total_rounds <= n * n * n,
            "took {} rounds",
            report.total_rounds
        );
        assert!(report.rounds_for("tree construction") > 0);
        assert!(report.rounds_for("fragment labels") > 0);
        assert_eq!(
            report.total_rounds,
            report.phase_rounds.iter().map(|(_, r)| r).sum::<u64>()
        );
    }

    #[test]
    fn register_bits_grow_like_log_squared() {
        let small = generators::workload(16, 0.25, 1);
        let large = generators::workload(96, 0.06, 1);
        let b_small = construct_mst(&small, &EngineConfig::seeded(1)).max_register_bits;
        let b_large = construct_mst(&large, &EngineConfig::seeded(1)).max_register_bits;
        // Θ(log² n): going from n = 16 to n = 96 multiplies log² n by ≈ 2.7, so the
        // measured registers must grow by far less than the 6× a linear dependence on n
        // would give, and must stay below the Ω(n log n) budget of explicit-list
        // approaches (96 · 7 = 672 bits).
        assert!(
            b_large < 6 * b_small,
            "register growth looks super-polylogarithmic: {b_small} → {b_large}"
        );
        assert!(
            b_large < 96 * 7,
            "registers must stay below the n·log n baseline, got {b_large}"
        );
    }

    #[test]
    fn improvement_count_is_bounded_by_phi_max() {
        let g = generators::workload(18, 0.3, 3);
        let report = construct_mst(&g, &EngineConfig::seeded(3));
        let n = g.node_count() as u64;
        let phi_max = n * (64 - n.leading_zeros() as u64 + 1);
        assert!((report.improvements as u64) <= phi_max);
    }

    #[test]
    fn works_under_the_adversarial_daemon() {
        let g = generators::workload(16, 0.3, 9);
        let config = EngineConfig::seeded(9).with_scheduler(SchedulerKind::Adversarial);
        let report = construct_mst(&g, &config);
        assert!(report.legal);
    }

    #[test]
    fn tree_workloads_need_no_improvements() {
        // If the graph is itself a tree, the spanning-tree phase already outputs the MST.
        let g = generators::randomize_weights(&generators::random_tree(20, 4), 4);
        let report = construct_mst(&g, &EngineConfig::seeded(4));
        assert!(report.legal);
        assert_eq!(report.improvements, 0);
    }
}
