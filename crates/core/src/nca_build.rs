//! Wave-based construction of the NCA labels of §V on a stabilized tree (Lemma 5.1).
//!
//! The construction needs one convergecast (subtree sizes decide the heavy children) and
//! one broadcast (labels extend downward), i.e. `O(height)` rounds, and leaves every
//! node with an `O(log n)`-entry label certified by the [`stst_labeling::nca::NcaScheme`]
//! proof-labeling scheme, so the overall construction stays silent.

use stst_graph::{Graph, Tree};
use stst_labeling::nca::{assign_nca_labels, NcaLabel, NcaScheme};
use stst_labeling::scheme::{Instance, ProofLabelingScheme};
use stst_runtime::{Codec, CodecCtx};

use crate::waves;

/// The result of building (and certifying) NCA labels over a tree.
#[derive(Clone, Debug)]
pub struct NcaBuildOutcome {
    /// One label per node.
    pub labels: Vec<NcaLabel>,
    /// Rounds charged to the construction: one convergecast plus one broadcast.
    pub rounds: u64,
    /// Maximum label size, in bits.
    pub max_label_bits: usize,
    /// Whether the proof-labeling scheme for the labeling accepts everywhere (it always
    /// should for prover-built labels; exposed so fault-injection experiments can see
    /// alarms after corrupting labels).
    pub certified: bool,
}

/// Builds the NCA labels of `tree` and certifies them with the NCA proof-labeling
/// scheme, charging the wave rounds of the distributed construction.
pub fn build_nca_labels(graph: &Graph, tree: &Tree) -> NcaBuildOutcome {
    let labels = assign_nca_labels(graph, tree);
    let scheme = NcaScheme;
    let certified = scheme
        .verify_all(&Instance::from_tree(graph, tree), &labels)
        .accepted();
    let ctx = CodecCtx::for_graph(graph);
    let max_label_bits = labels
        .iter()
        .map(|l| l.encoded_bits(&ctx))
        .max()
        .unwrap_or(0);
    NcaBuildOutcome {
        labels,
        rounds: waves::nca_labeling_rounds(tree),
        max_label_bits,
        certified,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stst_graph::bfs::bfs_tree;
    use stst_graph::generators;
    use stst_graph::nca::NcaOracle;
    use stst_labeling::nca::{label_index, nca_of_labels};

    #[test]
    fn construction_is_certified_and_correct() {
        for seed in 0..4 {
            let g = generators::workload(40, 0.1, seed);
            let t = bfs_tree(&g, g.min_ident_node());
            let outcome = build_nca_labels(&g, &t);
            assert!(outcome.certified);
            // Spot-check NCA answers against the oracle.
            let oracle = NcaOracle::new(&t);
            let index = label_index(&outcome.labels);
            for (u, v) in [(3usize, 17usize), (0, 39), (11, 12), (25, 25)] {
                let w = nca_of_labels(&outcome.labels[u], &outcome.labels[v]);
                assert_eq!(
                    index[&w],
                    oracle.nca(stst_graph::NodeId(u), stst_graph::NodeId(v))
                );
            }
        }
    }

    #[test]
    fn rounds_scale_with_the_height_not_n() {
        let g = generators::star(200);
        let t = bfs_tree(&g, stst_graph::NodeId(0));
        let outcome = build_nca_labels(&g, &t);
        assert_eq!(outcome.rounds, 4, "a star has height 1: two 2-round waves");
        let g = generators::path(200);
        let t = bfs_tree(&g, stst_graph::NodeId(0));
        assert_eq!(build_nca_labels(&g, &t).rounds, 400);
    }

    #[test]
    fn corrupted_labels_are_caught_by_the_scheme() {
        let g = generators::workload(25, 0.2, 2);
        let t = bfs_tree(&g, g.min_ident_node());
        let mut outcome = build_nca_labels(&g, &t);
        let victim = t.nodes().find(|&v| t.parent(v).is_some()).unwrap();
        outcome.labels[victim.0].segments.last_mut().unwrap().head = 9999;
        let accepted = NcaScheme
            .verify_all(&Instance::from_tree(&g, &t), &outcome.labels)
            .accepted();
        assert!(!accepted);
    }

    #[test]
    fn label_bits_stay_polylogarithmic() {
        let g = generators::workload(300, 0.03, 5);
        let t = bfs_tree(&g, g.min_ident_node());
        let outcome = build_nca_labels(&g, &t);
        // ≤ (log₂ n + 1) segments of ≤ (2 log₂ n) bits each, plus slack.
        assert!(
            outcome.max_label_bits <= 10 * 20 + 16,
            "NCA labels too large: {} bits",
            outcome.max_label_bits
        );
    }
}
