//! The resumable composition engine driving the MST and MDST constructions at wave
//! granularity with **incremental label maintenance**.
//!
//! The seed implementation of Corollaries 6.1 and 8.1 was a one-shot loop that rebuilt
//! every label family — Borůvka fragment labels (§VI), NCA labels (§V), redundant
//! distance/size labels (§IV) — from scratch on every improvement iteration:
//! `O(n log n)` label writes × up to `φ_max` switches. The paper itself charges label
//! *repair* per wave on the affected region (Lemmas 3.1, 4.1, 7.1): a loop-free switch
//! `T ← T + e − f` dirties only the fundamental cycle and the subtrees whose root paths
//! change. [`CompositionEngine`] owns the tree and all label families as persistent
//! state, exposes phase-step granularity ([`CompositionEngine::step`]), and repairs each
//! family on exactly that dirty region after every switch:
//!
//! * **redundant labels** — distances are patched on the re-hung subtree, sizes along
//!   the old and new root paths ([`stst_labeling::redundant::repair_redundant_labels`]);
//! * **NCA labels** — heavy-path labels are re-derived top-down from the nodes whose
//!   children set or heavy-child selection changed, descending only while a label
//!   actually changes ([`stst_labeling::nca::repair_nca_labels`]);
//! * **fragment labels** — the per-level Borůvka fragment state repairs its dirty
//!   frontier and stops the upward cascade at the level where the merge recomposes
//!   unchanged ([`stst_labeling::mst_fragments::FragmentState::apply_swap`]).
//!
//! The from-scratch provers are retained behind [`Relabel::FromScratch`] as the
//! reference mode: the differential oracle (`tests/incremental_label_oracle.rs`)
//! asserts that repaired labels are bit-identical to fresh reproofs after every switch,
//! and [`ConstructionReport::labels_written`] is the deterministic work counter the
//! incremental-vs-from-scratch speedup is asserted on.
//!
//! Because the engine is resumable, transient faults can be injected *between waves* of
//! a running composition ([`CompositionEngine::corrupt_random_labels`]): the next step
//! runs the 1-round proof-labeling verification wave, rebuilds exactly the rejected
//! families, and reports the measured recovery cost (experiment E8b).

use std::borrow::Cow;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use stst_graph::fr::{fr_certificate, improve_once};
use stst_graph::union_find::UnionFind;
use stst_graph::{EdgeId, Graph, Mutation, MutationOutcome, NodeId, Tree, Weight};
use stst_labeling::mst_fragments::{FragmentLabel, FragmentScheme, FragmentState};
use stst_labeling::nca::{assign_nca_labels, repair_nca_labels, NcaLabel, NcaScheme};
use stst_labeling::redundant::{repair_redundant_labels, RedundantLabel, RedundantScheme};
use stst_labeling::scheme::{Instance, ProofLabelingScheme};
use stst_runtime::bits::{BitReader, BitWriter};
use stst_runtime::par::ThreadPool;
use stst_runtime::persist::{RestoreError, Snapshot, SnapshotReader, KIND_ENGINE};
use stst_runtime::store::{ConfigStore, StoreMode};
use stst_runtime::{Codec, CodecCtx, Executor, ExecutorConfig, StoreReport};

use stst_obs::{Family, Layer, Obs, TraceEvent};

/// Minimum network size before the engine's per-node verification waves go through
/// the pool (below this, spawn overhead dominates). Results are unaffected.
const PAR_VERIFY_MIN: usize = 256;

use crate::framework::{ConstructionReport, EngineConfig, Relabel};
use crate::spanning::MinIdSpanningTree;
use crate::switch::loop_free_switch;
use crate::waves::{self, RoundLedger};

/// Which composed construction the engine runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EngineTask {
    /// Corollary 6.1: minimum spanning tree via PLS-guided Borůvka.
    Mst,
    /// Corollary 8.1: minimum-degree spanning tree via FR-trees.
    Mdst,
}

/// One phase step of the composition, as reported by [`CompositionEngine::step`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PhaseEvent {
    /// The guarded-rule spanning-tree phase reached quiescence.
    TreeConstructed {
        /// Rounds of the guarded-rule phase.
        rounds: u64,
    },
    /// Every label family is consistent with the current tree (built from scratch on
    /// the first pass, repaired on the dirty region afterwards).
    LabelsReady {
        /// Per-node label records written by this wave.
        labels_written: u64,
        /// Rounds charged to the wave.
        rounds: u64,
    },
    /// One improvement was applied through the loop-free switch machinery.
    Switched {
        /// Local reparentings performed (1 per hop of the reparenting path, or the
        /// number of swapped edges of a well-nested MDST sequence).
        local_switches: usize,
        /// Rounds charged to the switch.
        rounds: u64,
    },
    /// Injected label corruption was detected by the verification wave and the
    /// rejected families were rebuilt.
    Recovered {
        /// Number of label families that had to be re-proved.
        families_rebuilt: usize,
        /// Per-node label records written by the recovery.
        labels_written: u64,
        /// Rounds charged (one verification round plus the rebuild waves).
        rounds: u64,
    },
    /// A batch of topology mutations was applied and the affected state repaired; the
    /// engine resumes local search from the repaired configuration on the next step.
    TopologyApplied {
        /// Nodes whose incident topology (or dense index) changed.
        dirty_nodes: usize,
        /// Orphaned subtrees re-anchored through the loop-free switch machinery (or,
        /// after node churn, tree components reconnected by the rebuild).
        reanchored: usize,
        /// Per-node label records rewritten by the eager fragment repair.
        labels_written: u64,
        /// Rounds charged to the delta-detection and repair waves.
        rounds: u64,
    },
    /// A batch of topology mutations would sever the network. Nothing was committed:
    /// a spanning tree of a disconnected graph does not exist, so the condition is
    /// *reported*, never silently "repaired" — the caller decides whether to drop the
    /// batch (as the `stst-churn` driver does) or to tear the engine down.
    Partitioned {
        /// Number of connected components the mutated graph would have had.
        components: usize,
    },
    /// No rule is enabled: the composition is silent.
    Stabilized {
        /// Whether the stabilized tree satisfies the task's legality predicate.
        legal: bool,
    },
}

/// Rounds charged by the step an event reports (0 for the events that charge
/// none) — the `rounds` field of the trace wave that wraps the step.
fn event_rounds(event: &PhaseEvent) -> u64 {
    match event {
        PhaseEvent::TreeConstructed { rounds }
        | PhaseEvent::LabelsReady { rounds, .. }
        | PhaseEvent::Switched { rounds, .. }
        | PhaseEvent::Recovered { rounds, .. }
        | PhaseEvent::TopologyApplied { rounds, .. } => *rounds,
        PhaseEvent::Partitioned { .. } | PhaseEvent::Stabilized { .. } => 0,
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Phase {
    Build,
    Label,
    Improve,
    Done,
}

impl Phase {
    fn tag(self) -> u64 {
        match self {
            Phase::Build => 0,
            Phase::Label => 1,
            Phase::Improve => 2,
            Phase::Done => 3,
        }
    }

    fn from_tag(tag: u64) -> Option<Phase> {
        Some(match tag {
            0 => Phase::Build,
            1 => Phase::Label,
            2 => Phase::Improve,
            3 => Phase::Done,
            _ => return None,
        })
    }
}

/// Every phase label the engine ever charges the [`RoundLedger`] under. Snapshot
/// restore re-interns checkpointed ledger entries against this table — labels are
/// `&'static str`s and cannot round-trip through a file on their own.
const KNOWN_CHARGE_LABELS: [&str; 13] = [
    "tree construction (guarded rules)",
    "fragment labels (convergecast + broadcast per level)",
    "NCA labels",
    "redundant labels",
    "loop-free edge switch",
    "well-nested loop-free switches",
    "fragment label repair (dirty region)",
    "NCA label repair (dirty region)",
    "redundant label repair (dirty region)",
    "FR marking and fragment propagation",
    "label corruption recovery",
    "topology delta (dirty-region repair)",
    "topology delta (node churn rebuild)",
];

/// Ledger label a restored entry falls back to when its checkpointed text matches no
/// entry of [`KNOWN_CHARGE_LABELS`] (a snapshot from a build with different charge
/// sites). The rounds are preserved; only the attribution is lost.
const UNATTRIBUTED_LABEL: &str = "restored (unattributed)";

/// What [`CompositionEngine::restore`] had to do to turn the checkpointed
/// configuration back into a consistent engine. A snapshot taken at a clean wave
/// boundary restores **verbatim** (`families_rebuilt == 0`, `rounds == 0` — counters
/// continue exactly as the uninterrupted run); a mid-repair or stale snapshot is just
/// an arbitrary initial configuration, so the restore runs the verification wave and
/// rebuilds exactly the rejected families, charging the measured recovery cost like
/// any other transient fault.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RestoreOutcome {
    /// Label families whose checkpointed labels did not certify the restored tree.
    pub families_rebuilt: usize,
    /// Rounds charged for the restore-time verification + rebuild (0 for a clean
    /// wave-boundary snapshot).
    pub rounds: u64,
}

/// Appends `bytes` to a word stream as a length-prefixed little-endian packing.
fn push_bytes(words: &mut Vec<u64>, bytes: &[u8]) {
    words.push(bytes.len() as u64);
    for chunk in bytes.chunks(8) {
        let mut w = [0u8; 8];
        w[..chunk.len()].copy_from_slice(chunk);
        words.push(u64::from_le_bytes(w));
    }
}

/// Reads a length-prefixed byte packing written by [`push_bytes`].
fn read_bytes(r: &mut SnapshotReader<'_>) -> Result<Vec<u8>, RestoreError> {
    let len = r.next_usize()?;
    let words = r.take(len.div_ceil(8))?;
    let mut bytes = Vec::with_capacity(len);
    for (i, &w) in words.iter().enumerate() {
        let le = w.to_le_bytes();
        bytes.extend_from_slice(&le[..(len - i * 8).min(8)]);
    }
    Ok(bytes)
}

/// Appends a label family to a word stream as one concatenated codec bitstream — the
/// exact `O(log² n)`-bit layout the packed store allocates, preceded by its bit and
/// word lengths.
fn push_labels<L: Codec>(words: &mut Vec<u64>, labels: &[L], ctx: &CodecCtx) {
    let mut stream: Vec<u64> = Vec::new();
    let mut writer = BitWriter::new(&mut stream, 0);
    let mut bits = 0usize;
    for label in labels {
        label.encode_into(ctx, &mut writer);
        bits += label.encoded_bits(ctx);
    }
    words.push(bits as u64);
    words.push(stream.len() as u64);
    words.extend_from_slice(&stream);
}

/// Reads a label family written by [`push_labels`] (`n` labels).
fn read_labels<L: Codec>(
    r: &mut SnapshotReader<'_>,
    n: usize,
    ctx: &CodecCtx,
) -> Result<Vec<L>, RestoreError> {
    let bits = r.next_usize()?;
    let word_len = r.next_usize()?;
    let stream = r.take(word_len)?;
    if bits > word_len * 64 {
        return Err(RestoreError::Malformed("label bitstream length overflow"));
    }
    let mut reader = BitReader::new(stream, 0);
    let mut labels = Vec::with_capacity(n);
    for _ in 0..n {
        if reader.bits_read() > bits as u64 {
            return Err(RestoreError::Malformed("label bitstream ended early"));
        }
        labels.push(L::decode_from(ctx, &mut reader));
    }
    if reader.bits_read() != bits as u64 {
        return Err(RestoreError::Malformed("label bitstream length mismatch"));
    }
    Ok(labels)
}

/// The tree and its derived structure (children, depths, subtree sizes), maintained
/// incrementally across parent-pointer edits.
struct TreeState {
    parents: Vec<Option<NodeId>>,
    root: NodeId,
    tree: Tree,
    children: Vec<Vec<NodeId>>,
    depths: Vec<usize>,
    sizes: Vec<usize>,
}

/// The dirty region of one tree edit, as consumed by the label repairers.
struct DirtyRegion {
    /// Nodes whose children set changed (old and new parents of the reparented nodes).
    structurally_dirty: Vec<NodeId>,
    /// Nodes whose root path (hence depth) may have changed: the re-hung subtrees.
    depth_dirty: Vec<NodeId>,
    /// Nodes whose subtree membership (hence size) may have changed: the reparented
    /// nodes plus their old and new ancestors.
    size_dirty: Vec<NodeId>,
}

impl DirtyRegion {
    /// Height of the re-hung region (max − min depth over `depth_dirty`, in the new
    /// tree), the quantity the repair-wave round charge scales with.
    fn height_in(&self, depths: &[usize]) -> u64 {
        let max = self
            .depth_dirty
            .iter()
            .map(|&v| depths[v.0])
            .max()
            .unwrap_or(0);
        let min = self
            .depth_dirty
            .iter()
            .map(|&v| depths[v.0])
            .min()
            .unwrap_or(0);
        (max - min) as u64
    }
}

impl TreeState {
    fn new(tree: Tree) -> Self {
        TreeState {
            parents: tree.parents().to_vec(),
            root: tree.root(),
            children: tree.children_table(),
            depths: tree.depths(),
            sizes: tree.subtree_sizes(),
            tree,
        }
    }

    fn height(&self) -> u64 {
        self.depths.iter().copied().max().unwrap_or(0) as u64
    }

    /// Applies a batch of reparentings (the result must be a valid tree on the same
    /// root) and recomputes depths and sizes on exactly the dirty region.
    fn apply_parent_changes(&mut self, changes: &[(NodeId, NodeId)]) -> DirtyRegion {
        let n = self.parents.len();
        let mut size_mark = vec![false; n];
        let mut size_dirty: Vec<NodeId> = Vec::new();
        let push_size = |v: NodeId, mark: &mut Vec<bool>, list: &mut Vec<NodeId>| {
            if !mark[v.0] {
                mark[v.0] = true;
                list.push(v);
            }
        };
        let mut structurally: Vec<NodeId> = Vec::new();
        // Old ancestors (walked before any mutation) — the paths that lose the re-hung
        // subtrees.
        for &(v, new_parent) in changes {
            let old_parent = self.parents[v.0].expect("the root is never reparented");
            structurally.push(old_parent);
            structurally.push(new_parent);
            push_size(v, &mut size_mark, &mut size_dirty);
            let mut cur = Some(old_parent);
            while let Some(x) = cur {
                push_size(x, &mut size_mark, &mut size_dirty);
                cur = self.parents[x.0];
            }
        }
        // Apply the edits to the parent vector and the children table.
        for &(v, new_parent) in changes {
            let old_parent = self.parents[v.0].expect("checked above");
            let slot = self.children[old_parent.0]
                .iter()
                .position(|&c| c == v)
                .expect("child lists mirror the parent pointers");
            self.children[old_parent.0].swap_remove(slot);
            self.children[new_parent.0].push(v);
            self.parents[v.0] = Some(new_parent);
        }
        // New ancestors — the paths that gain the re-hung subtrees.
        for &(v, _) in changes {
            let mut cur = self.parents[v.0];
            while let Some(x) = cur {
                push_size(x, &mut size_mark, &mut size_dirty);
                cur = self.parents[x.0];
            }
        }
        // Depths: recompute over the union of the re-hung subtrees, top-down from the
        // subtree roots whose parents kept their depth.
        let mut in_dirty = vec![false; n];
        let mut depth_dirty: Vec<NodeId> = Vec::new();
        let mut stack: Vec<NodeId> = Vec::new();
        for &(v, _) in changes {
            stack.push(v);
            while let Some(x) = stack.pop() {
                if in_dirty[x.0] {
                    continue;
                }
                in_dirty[x.0] = true;
                depth_dirty.push(x);
                stack.extend(self.children[x.0].iter().copied());
            }
        }
        let mut queue: std::collections::VecDeque<NodeId> = depth_dirty
            .iter()
            .copied()
            .filter(|&x| self.parents[x.0].map(|p| !in_dirty[p.0]).unwrap_or(false))
            .collect();
        while let Some(x) = queue.pop_front() {
            let p = self.parents[x.0].expect("dirty nodes are never the root");
            self.depths[x.0] = self.depths[p.0] + 1;
            for &c in &self.children[x.0] {
                queue.push_back(c);
            }
        }
        // Sizes: recompute bottom-up over the dirty set (children outside the set kept
        // their sizes).
        size_dirty.sort_by_key(|&v| std::cmp::Reverse(self.depths[v.0]));
        for &v in &size_dirty {
            self.sizes[v.0] = 1 + self.children[v.0]
                .iter()
                .map(|&c| self.sizes[c.0])
                .sum::<usize>();
        }
        self.tree = Tree::from_parents_unchecked(self.parents.clone(), self.root);
        structurally.sort_unstable();
        structurally.dedup();
        DirtyRegion {
            structurally_dirty: structurally,
            depth_dirty,
            size_dirty,
        }
    }
}

/// A switch applied to the tree whose label repair is still pending (consumed by the
/// next `Label` step in [`Relabel::Incremental`] mode).
struct PendingRepair {
    /// The `(add, remove)` edge pair of an MST switch (`None` for MDST improvements,
    /// whose fragment labels are not maintained).
    swap: Option<(EdgeId, EdgeId)>,
    region: DirtyRegion,
    /// Hops of the reparenting path (or swapped edges of the nested sequence).
    path_len: u64,
    /// Height of the re-hung dirty region (for the repair-wave round charge).
    dirty_height: u64,
}

/// The resumable composition engine (see the module docs).
pub struct CompositionEngine<'g> {
    /// The network. Borrowed until the first topology mutation, owned afterwards
    /// ([`CompositionEngine::apply_topology`] clones on first write) — static-topology
    /// runs keep the zero-copy behavior of the previous `&'g Graph` field.
    graph: Cow<'g, Graph>,
    /// Codec field widths of the current instance (refreshed whenever a topology
    /// delta commits — identity and weight ranges can grow).
    ctx: CodecCtx,
    task: EngineTask,
    config: EngineConfig,
    phase: Phase,
    state: Option<TreeState>,
    fragments: Option<FragmentState>,
    nca: Vec<NcaLabel>,
    redundant: Vec<RedundantLabel>,
    pending: Option<PendingRepair>,
    corrupted: bool,
    rng: StdRng,
    /// Scoped worker pool shared by the heavy from-scratch phases (verification waves,
    /// label reproofs, per-level Borůvka scans) and the guarded-rule executor.
    pool: ThreadPool,
    ledger: RoundLedger,
    improvements: usize,
    labels_written: u64,
    max_register_bits: usize,
    legal: bool,
    /// Observability handle ([`CompositionEngine::attach_obs`]); disabled by default.
    /// Every engine entry point (`step`, `apply_topology`) opens one Engine-layer
    /// trace wave, and the phase bodies emit per-family `Repair` events inside it.
    obs: Obs,
    /// Wave index of the Engine-layer trace wave currently open (None between waves;
    /// always None while `obs` is disabled).
    obs_wave: Option<u64>,
}

impl<'g> CompositionEngine<'g> {
    /// Creates an engine for `task` on `graph`. Nothing runs until [`step`] or [`run`]
    /// is called.
    ///
    /// [`step`]: CompositionEngine::step
    /// [`run`]: CompositionEngine::run
    pub fn new(graph: &'g Graph, task: EngineTask, config: EngineConfig) -> Self {
        CompositionEngine {
            graph: Cow::Borrowed(graph),
            ctx: CodecCtx::for_graph(graph),
            task,
            config,
            phase: Phase::Build,
            state: None,
            fragments: None,
            nca: Vec::new(),
            redundant: Vec::new(),
            pending: None,
            corrupted: false,
            rng: StdRng::seed_from_u64(config.seed ^ 0xc0_de),
            pool: ThreadPool::new(config.threads),
            ledger: RoundLedger::new(),
            improvements: 0,
            labels_written: 0,
            max_register_bits: 0,
            legal: false,
            obs: Obs::disabled(),
            obs_wave: None,
        }
    }

    /// Attaches an observability handle: subsequent phase steps and topology deltas
    /// emit Engine-layer trace waves (with `Repair`, `TopologyDelta`,
    /// `CorruptionInjected` and `SilenceReached` events) into its ring, per-phase
    /// wall-time spans into its histograms, and the run totals into its gauges. The
    /// handle is also passed down to the guarded-rule executor of the build phase, so
    /// one enabled handle yields a unified executor + engine trace.
    ///
    /// Instrumentation is determinism-transparent: attaching an enabled handle never
    /// changes a bit of the run (pinned by `tests/parallel_determinism.rs`).
    pub fn attach_obs(&mut self, obs: Obs) {
        self.obs = obs;
        self.obs_wave = None;
    }

    /// The attached observability handle (disabled unless
    /// [`CompositionEngine::attach_obs`] was called).
    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    /// The current tree.
    ///
    /// # Panics
    ///
    /// Panics before the tree-construction phase has run.
    pub fn tree(&self) -> &Tree {
        &self.state.as_ref().expect("tree not built yet").tree
    }

    /// The network the engine currently runs on (reflects every committed topology
    /// mutation).
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Total rounds charged so far (across construction, waves, switches and deltas).
    pub fn total_rounds(&self) -> u64 {
        self.ledger.total()
    }

    /// Edge swaps (or well-nested swap sequences) applied so far.
    pub fn improvements(&self) -> usize {
        self.improvements
    }

    /// The maintained fragment labels (MST only, after the first labeling wave).
    pub fn fragment_labels(&self) -> Option<&[FragmentLabel]> {
        self.fragments.as_ref().map(|s| s.labels())
    }

    /// The maintained NCA labels (empty before the first labeling wave).
    pub fn nca_labels(&self) -> &[NcaLabel] {
        &self.nca
    }

    /// The maintained redundant labels (empty before the first labeling wave).
    pub fn redundant_labels(&self) -> &[RedundantLabel] {
        &self.redundant
    }

    /// Per-node label records written so far (the deterministic work counter).
    pub fn labels_written(&self) -> u64 {
        self.labels_written
    }

    /// `true` once the composition is silent.
    pub fn is_stabilized(&self) -> bool {
        self.phase == Phase::Done
    }

    /// The composed construction this engine runs.
    pub fn task(&self) -> EngineTask {
        self.task
    }

    /// The codec field widths of the current instance (refreshed whenever a topology
    /// delta commits).
    pub fn codec_ctx(&self) -> CodecCtx {
        self.ctx
    }

    /// `true` if the last verification wave accepted the configuration as legal.
    pub fn is_legal(&self) -> bool {
        self.legal
    }

    /// `true` when the configuration is a *silent* one a serving snapshot may be
    /// published from: the composition is stabilized, no repair is pending and no
    /// injected corruption is awaiting its verification wave. This is the publication
    /// hook of the serving layer (`stst-serve`) — the paper's reason for silence is
    /// that higher-level protocols consume the certified labels, and this predicate is
    /// what guarantees they only ever consume a configuration every verifier accepted.
    pub fn is_publishable(&self) -> bool {
        self.is_stabilized() && !self.corrupted && self.pending.is_none()
    }

    /// Runs the composition to silence and returns the measured report.
    ///
    /// # Panics
    ///
    /// Panics if the guarded-rule spanning-tree phase does not converge within the
    /// configured step budget (which, for connected graphs, indicates a budget far too
    /// small for the graph size).
    pub fn run(&mut self) -> ConstructionReport {
        while !matches!(self.step(), PhaseEvent::Stabilized { .. }) {}
        self.report()
    }

    /// The report of the run so far (complete once [`PhaseEvent::Stabilized`] was
    /// returned).
    pub fn report(&self) -> ConstructionReport {
        ConstructionReport {
            tree: self.tree().clone(),
            total_rounds: self.ledger.total(),
            phase_rounds: self.ledger.by_phase(),
            labels_written: self.labels_written,
            improvements: self.improvements,
            max_register_bits: self.max_register_bits,
            legal: self.legal,
        }
    }

    /// Advances the composition by one phase step.
    pub fn step(&mut self) -> PhaseEvent {
        if !self.obs.is_enabled() {
            return self.step_inner();
        }
        let span_name = if self.corrupted {
            "engine_recover"
        } else {
            match self.phase {
                Phase::Build => "engine_build",
                Phase::Label => "engine_label",
                Phase::Improve => "engine_improve",
                Phase::Done => "engine_done",
            }
        };
        let wave = self.obs.begin_wave(Layer::Engine);
        self.obs_wave = Some(wave);
        self.obs.emit(TraceEvent::WaveStart {
            layer: Layer::Engine,
            wave,
        });
        let span = self.obs.span(span_name);
        let event = self.step_inner();
        drop(span);
        self.obs_wave = None;
        if let PhaseEvent::Stabilized { .. } = event {
            self.obs.emit(TraceEvent::SilenceReached {
                layer: Layer::Engine,
                wave,
                rounds: self.ledger.total(),
            });
            self.obs
                .gauge("engine_total_rounds")
                .set(self.ledger.total());
            self.obs
                .gauge("engine_labels_written")
                .set(self.labels_written);
            self.obs
                .gauge("engine_improvements")
                .set(self.improvements as u64);
            self.obs
                .gauge("engine_max_register_bits")
                .set(self.max_register_bits as u64);
        }
        self.obs.emit(TraceEvent::WaveEnd {
            layer: Layer::Engine,
            wave,
            rounds: event_rounds(&event),
        });
        event
    }

    fn step_inner(&mut self) -> PhaseEvent {
        if self.corrupted {
            return self.recover();
        }
        match self.phase {
            Phase::Build => self.build_tree(),
            Phase::Label => self.label_wave(),
            Phase::Improve => self.improve(),
            Phase::Done => PhaseEvent::Stabilized { legal: self.legal },
        }
    }

    /// The Engine-layer wave to stamp on events emitted mid-step; events at a
    /// wave boundary (fault hooks) stamp the wave the next step will open.
    fn obs_current_wave(&self) -> u64 {
        self.obs_wave
            .unwrap_or_else(|| self.obs.peek_wave(Layer::Engine))
    }

    /// Applies a batch of live topology mutations — links failing, weights drifting,
    /// nodes joining and leaving — and repairs the engine's persistent state like a
    /// **localized fault** (the headline promise of self-stabilization, exercised on
    /// the workload it was designed for):
    ///
    /// * the graph delta is committed through [`Graph::apply_mutations`] (one CSR
    ///   rebuild per batch), *unless* it would sever the network, which is reported as
    ///   [`PhaseEvent::Partitioned`] without committing anything;
    /// * every tree edge the batch deleted re-anchors its orphaned subtree through the
    ///   loop-free switch machinery: the minimum-weight replacement edge is attached
    ///   by the same parent-pointer reversal a switch uses, and the resulting dirty
    ///   region is left pending for the incremental NCA/redundant label repair of the
    ///   next wave (mutations that leave the tree intact — non-tree edge removal,
    ///   edge insertion, weight drift — invalidate **no** tree-derived label at all);
    /// * the Borůvka fragment state is repaired on the endpoint-dirty frontier
    ///   ([`FragmentState::apply_topology`]), bit-identical to a from-scratch rebuild
    ///   on the mutated instance;
    /// * node churn remaps the dense index space, so it falls back to the coarse
    ///   path: surviving tree edges are kept, components reconnected by the lightest
    ///   replacement edges, and every label family re-proved from scratch on the next
    ///   wave (`old_index` bookkeeping is in the returned
    ///   [`stst_graph::MutationOutcome`] contract);
    /// * local search then resumes: subsequent [`step`](CompositionEngine::step)s
    ///   repair labels and apply improving swaps until the composition is silent on
    ///   the mutated network. In [`Relabel::FromScratch`] mode every family is
    ///   re-proved instead — the differential baseline the churn oracle and E10
    ///   compare against.
    ///
    /// This is a wave-boundary event, exactly like
    /// [`corrupt_random_labels`](CompositionEngine::corrupt_random_labels):
    /// call it after a [`PhaseEvent::LabelsReady`], [`PhaseEvent::Stabilized`] or
    /// [`PhaseEvent::TreeConstructed`] — never while a switch's label repair is
    /// pending — so parallel wave execution stays deterministic.
    ///
    /// # Panics
    ///
    /// Panics if a label repair is pending or injected corruption is unresolved, or if
    /// a mutation itself is invalid (see [`Graph::apply_mutations`]).
    pub fn apply_topology(&mut self, mutations: &[Mutation]) -> PhaseEvent {
        if !self.obs.is_enabled() {
            return self.apply_topology_inner(mutations);
        }
        let wave = self.obs.begin_wave(Layer::Engine);
        self.obs_wave = Some(wave);
        self.obs.emit(TraceEvent::WaveStart {
            layer: Layer::Engine,
            wave,
        });
        let span = self.obs.span("engine_topology");
        let event = self.apply_topology_inner(mutations);
        drop(span);
        self.obs_wave = None;
        if let PhaseEvent::TopologyApplied {
            dirty_nodes,
            reanchored,
            labels_written,
            ..
        } = event
        {
            self.obs.counter("engine_topology_deltas").inc();
            self.obs.emit(TraceEvent::TopologyDelta {
                layer: Layer::Engine,
                wave,
                dirty_nodes: dirty_nodes as u64,
                reanchored: reanchored as u64,
            });
            if labels_written > 0 {
                // The eager fragment repair is the only label write a delta
                // performs; NCA/redundant repair lands in the next label wave.
                self.obs.emit(TraceEvent::Repair {
                    layer: Layer::Engine,
                    wave,
                    family: Family::Fragments,
                    dirty_nodes: dirty_nodes as u64,
                    labels_written,
                });
            }
        }
        self.obs.emit(TraceEvent::WaveEnd {
            layer: Layer::Engine,
            wave,
            rounds: event_rounds(&event),
        });
        event
    }

    fn apply_topology_inner(&mut self, mutations: &[Mutation]) -> PhaseEvent {
        assert!(
            self.pending.is_none() && !self.corrupted,
            "topology deltas are wave-boundary events"
        );
        let mut next = self.graph.as_ref().clone();
        let outcome = next.apply_mutations(mutations);
        if !next.is_connected() {
            return PhaseEvent::Partitioned {
                components: next.component_count(),
            };
        }
        let written_before = self.labels_written;
        let rounds_before = self.ledger.total();
        if self.state.is_none() {
            // Nothing constructed yet: the guarded-rule build phase simply starts
            // from the mutated network.
            self.graph = Cow::Owned(next);
            self.ctx = CodecCtx::for_graph(&self.graph);
            return PhaseEvent::TopologyApplied {
                dirty_nodes: outcome.dirty.len(),
                reanchored: 0,
                labels_written: 0,
                rounds: 0,
            };
        }
        if outcome.node_set_changed {
            self.graph = Cow::Owned(next);
            self.ctx = CodecCtx::for_graph(&self.graph);
            return self.rebuild_after_node_churn(&outcome);
        }
        // Edge-level delta: commit, then re-anchor orphaned subtrees until no parent
        // pointer crosses a deleted edge. A batch can delete several tree edges on one
        // ancestor chain, and a re-anchoring reversal may then re-use a *sibling*
        // deleted edge in the flipped orientation — so stale pointers are re-discovered
        // after every repair instead of collected once (each repair eliminates the
        // picked stale pointer and flips at most the others, so the count strictly
        // decreases and the loop terminates; pinned by `tests/review_repro.rs`).
        self.graph = Cow::Owned(next);
        self.ctx = CodecCtx::for_graph(&self.graph);
        let mut frag_dirty: Vec<NodeId> = outcome.dirty.clone();
        let mut rounds = 1u64; // the delta-detection wave
        let mut reanchored = 0usize;
        let mut structurally: Vec<NodeId> = Vec::new();
        let mut depth_dirty: Vec<NodeId> = Vec::new();
        let mut size_dirty: Vec<NodeId> = Vec::new();
        let mut path_len = 0u64;
        let mut dirty_height = 0u64;
        loop {
            let child_side = {
                let state = self.state.as_ref().expect("tree built");
                state
                    .tree
                    .edges()
                    .into_iter()
                    .find(|&(v, p)| self.graph.edge_between(v, p).is_none())
                    .map(|(v, _)| v)
            };
            let Some(child_side) = child_side else { break };
            reanchored += 1;
            let state = self.state.as_mut().expect("tree built");
            let (anchor, changes) = reanchor_changes(&self.graph, state, child_side)
                .expect("a connected graph always offers a replacement edge");
            let anchor_edge = self.graph.edge(anchor);
            frag_dirty.push(anchor_edge.u);
            frag_dirty.push(anchor_edge.v);
            let region = state.apply_parent_changes(&changes);
            let height = region.height_in(&state.depths);
            rounds += waves::repair_rounds(height, changes.len() as u64);
            structurally.extend(region.structurally_dirty);
            depth_dirty.extend(region.depth_dirty);
            size_dirty.extend(region.size_dirty);
            path_len += changes.len() as u64;
            dirty_height = dirty_height.max(height);
        }
        frag_dirty.sort_unstable();
        frag_dirty.dedup();
        match self.config.relabel {
            Relabel::Incremental => {
                if let Some(fragments) = self.fragments.as_mut() {
                    let state = self.state.as_ref().expect("tree built");
                    let written = fragments.apply_topology(&self.graph, &state.tree, &frag_dirty);
                    self.labels_written += written;
                    rounds += waves::repair_rounds(dirty_height, frag_dirty.len() as u64);
                }
                if reanchored > 0 {
                    for list in [&mut structurally, &mut depth_dirty, &mut size_dirty] {
                        list.sort_unstable();
                        list.dedup();
                    }
                    self.pending = Some(PendingRepair {
                        swap: None,
                        region: DirtyRegion {
                            structurally_dirty: structurally,
                            depth_dirty,
                            size_dirty,
                        },
                        path_len,
                        dirty_height,
                    });
                    self.phase = Phase::Label;
                } else if self.nca.is_empty() {
                    // The delta landed right after TreeConstructed, before the first
                    // labeling wave: there is nothing to repair yet — the next wave
                    // proves every family from scratch on the mutated graph.
                    self.phase = Phase::Label;
                } else {
                    // The tree is untouched, so every tree-derived label family is
                    // still exact: resume local search directly.
                    self.phase = Phase::Improve;
                }
                if !self.nca.is_empty() {
                    self.account_register_bits();
                }
            }
            Relabel::FromScratch => {
                // Reference mode: the next wave re-proves every family from scratch.
                self.pending = None;
                self.phase = Phase::Label;
            }
        }
        self.ledger
            .charge("topology delta (dirty-region repair)", rounds);
        PhaseEvent::TopologyApplied {
            dirty_nodes: outcome.dirty.len(),
            reanchored,
            labels_written: self.labels_written - written_before,
            rounds: self.ledger.total() - rounds_before,
        }
    }

    /// The coarse repair path for node churn: the dense index space was remapped, so
    /// every `NodeId`-keyed register is void. Surviving tree edges are kept, the
    /// forest is reconnected with the lightest replacement edges (deterministic
    /// Kruskal completion), the tree is re-rooted at the mutated graph's minimum
    /// identity, and all label families are re-proved from scratch on the next wave.
    fn rebuild_after_node_churn(&mut self, outcome: &MutationOutcome) -> PhaseEvent {
        let old_state = self.state.take().expect("tree built");
        let graph: &Graph = &self.graph;
        let n = graph.node_count();
        let mut new_of_old: Vec<Option<NodeId>> = vec![None; old_state.parents.len()];
        for (i, o) in outcome.old_index.iter().enumerate() {
            if let Some(o) = o {
                new_of_old[o.0] = Some(NodeId(i));
            }
        }
        let mut uf = UnionFind::new(n);
        let mut edges: Vec<EdgeId> = Vec::new();
        for (v_old, p_old) in old_state.tree.edges() {
            if let (Some(v), Some(p)) = (new_of_old[v_old.0], new_of_old[p_old.0]) {
                if let Some(e) = graph.edge_between(v, p) {
                    if uf.union(v.0, p.0) {
                        edges.push(e);
                    }
                }
            }
        }
        let surviving = edges.len();
        let mut order: Vec<EdgeId> = graph.edge_ids().collect();
        order.sort_by_key(|&e| (graph.weight(e), e.index()));
        for e in order {
            if uf.component_count() == 1 {
                break;
            }
            let ed = graph.edge(e);
            if uf.union(ed.u.0, ed.v.0) {
                edges.push(e);
            }
        }
        let root = graph.min_ident_node();
        let tree =
            Tree::from_edge_set(graph, &edges, root).expect("the mutated graph is connected");
        self.state = Some(TreeState::new(tree));
        self.fragments = None;
        self.nca = Vec::new();
        self.redundant = Vec::new();
        self.pending = None;
        let state = self.state.as_ref().expect("just rebuilt");
        let rounds =
            1 + waves::convergecast_rounds(&state.tree) + waves::broadcast_rounds(&state.tree);
        self.ledger
            .charge("topology delta (node churn rebuild)", rounds);
        self.phase = Phase::Label;
        PhaseEvent::TopologyApplied {
            dirty_nodes: outcome.dirty.len(),
            reanchored: n - 1 - surviving,
            labels_written: 0,
            rounds,
        }
    }

    fn build_tree(&mut self) -> PhaseEvent {
        let exec_config = ExecutorConfig::with_scheduler(self.config.seed, self.config.scheduler)
            .with_threads(self.config.threads);
        let mut exec = Executor::from_arbitrary(&self.graph, MinIdSpanningTree, exec_config);
        exec.attach_obs(self.obs.clone());
        let quiescence = exec
            .run_to_quiescence(self.config.max_steps)
            .expect("the spanning-tree phase converges on connected graphs");
        self.ledger
            .charge("tree construction (guarded rules)", quiescence.rounds);
        self.max_register_bits = self
            .max_register_bits
            .max(exec.peak_space_report().max_bits);
        let tree = exec
            .extract_tree()
            .expect("phase 1 stabilizes on a spanning tree");
        self.state = Some(TreeState::new(tree));
        self.phase = Phase::Label;
        PhaseEvent::TreeConstructed {
            rounds: quiescence.rounds,
        }
    }

    /// Builds (first pass / from-scratch mode) or repairs (incremental mode) every
    /// label family for the current tree.
    fn label_wave(&mut self) -> PhaseEvent {
        let written_before = self.labels_written;
        let rounds_before = self.ledger.total();
        let pending = self.pending.take();
        let incremental = self.config.relabel == Relabel::Incremental
            && pending.is_some()
            && !self.nca.is_empty();
        if incremental {
            let pending = pending.expect("checked above");
            let state = self.state.as_ref().expect("tree built");
            let repair_rounds = waves::repair_rounds(pending.dirty_height, pending.path_len);
            if let Some((add, remove)) = pending.swap {
                let fragments = self.fragments.as_mut().expect("MST maintains fragments");
                let written = fragments.apply_swap(&self.graph, add, remove);
                self.labels_written += written;
                self.ledger
                    .charge("fragment label repair (dirty region)", repair_rounds);
                self.obs.emit(TraceEvent::Repair {
                    layer: Layer::Engine,
                    wave: self.obs_current_wave(),
                    family: Family::Fragments,
                    dirty_nodes: pending.path_len,
                    labels_written: written,
                });
            }
            let mut seeds = pending.region.structurally_dirty.clone();
            for &x in &pending.region.size_dirty {
                if let Some(p) = state.parents[x.0] {
                    seeds.push(p);
                }
            }
            let written = repair_nca_labels(
                &self.graph,
                &state.children,
                &state.sizes,
                &state.depths,
                &mut self.nca,
                &seeds,
            ) as u64;
            self.labels_written += written;
            self.ledger
                .charge("NCA label repair (dirty region)", repair_rounds);
            self.obs.emit(TraceEvent::Repair {
                layer: Layer::Engine,
                wave: self.obs_current_wave(),
                family: Family::Nca,
                dirty_nodes: seeds.len() as u64,
                labels_written: written,
            });
            let written = repair_redundant_labels(
                &mut self.redundant,
                &state.depths,
                &state.sizes,
                &pending.region.depth_dirty,
                &pending.region.size_dirty,
            ) as u64;
            self.labels_written += written;
            self.ledger
                .charge("redundant label repair (dirty region)", repair_rounds);
            self.obs.emit(TraceEvent::Repair {
                layer: Layer::Engine,
                wave: self.obs_current_wave(),
                family: Family::Redundant,
                dirty_nodes: (pending.region.depth_dirty.len() + pending.region.size_dirty.len())
                    as u64,
                labels_written: written,
            });
            if self.task == EngineTask::Mdst {
                self.charge_fr_marking();
            }
        } else {
            self.build_labels_from_scratch();
        }
        // Register accounting walks every label of every family (`O(n log n)` work at
        // MST scale), so incremental repair waves sample it: the from-scratch waves
        // (where labels are largest — the freshly proven families on the least-optimal
        // tree), every 32nd repair wave, and the stabilized configuration (see
        // `improve_mst`/`improve_mdst`) are always accounted, which pins the peak
        // without paying an `O(n log n)` scan per switch.
        if !incremental || self.improvements.is_multiple_of(32) {
            self.account_register_bits();
        }
        self.phase = Phase::Improve;
        PhaseEvent::LabelsReady {
            labels_written: self.labels_written - written_before,
            rounds: self.ledger.total() - rounds_before,
        }
    }

    /// The from-scratch provers (first labeling pass and the `Relabel::FromScratch`
    /// reference mode): every family is rebuilt with full waves over the tree. The
    /// families are independent pure functions of `(graph, tree)`, so they run
    /// concurrently on the pool (the fragment prover additionally parallelizes its
    /// per-level scans internally); ledger charges and work counters are applied
    /// afterwards, on the calling thread, in the same fixed family order at any
    /// thread count.
    fn build_labels_from_scratch(&mut self) {
        let n = self.graph.node_count() as u64;
        if self.task == EngineTask::Mst {
            let graph: &Graph = &self.graph;
            let tree = &self.state.as_ref().expect("tree built").tree;
            let pool = &self.pool;
            let (fragments, (nca, redundant)) = pool.join(
                || FragmentState::new_with_pool(graph, tree, pool),
                || {
                    pool.join(
                        || assign_nca_labels(graph, tree),
                        || RedundantScheme.prove(graph, tree),
                    )
                },
            );
            let fragment_rounds = waves::fragment_labeling_rounds(tree, fragments.level_count());
            let nca_rounds = waves::nca_labeling_rounds(tree);
            let redundant_rounds = waves::convergecast_rounds(tree) + waves::broadcast_rounds(tree);
            self.fragments = Some(fragments);
            self.nca = nca;
            self.redundant = redundant;
            self.ledger.charge(
                "fragment labels (convergecast + broadcast per level)",
                fragment_rounds,
            );
            self.labels_written += n;
            self.obs_note_from_scratch(Family::Fragments, n);
            self.ledger.charge("NCA labels", nca_rounds);
            self.labels_written += n;
            self.obs_note_from_scratch(Family::Nca, n);
            self.ledger.charge("redundant labels", redundant_rounds);
            self.labels_written += n;
            self.obs_note_from_scratch(Family::Redundant, n);
        } else {
            self.charge_fr_marking();
            let graph: &Graph = &self.graph;
            let tree = &self.state.as_ref().expect("tree built").tree;
            let (nca, redundant) = self.pool.join(
                || assign_nca_labels(graph, tree),
                || RedundantScheme.prove(graph, tree),
            );
            let nca_rounds = waves::nca_labeling_rounds(tree);
            let redundant_rounds = waves::convergecast_rounds(tree) + waves::broadcast_rounds(tree);
            self.nca = nca;
            self.redundant = redundant;
            self.ledger.charge("NCA labels", nca_rounds);
            self.labels_written += n;
            self.obs_note_from_scratch(Family::Nca, n);
            self.ledger.charge("redundant labels", redundant_rounds);
            self.labels_written += n;
            self.obs_note_from_scratch(Family::Redundant, n);
        }
    }

    /// Emits the Repair trace event of a from-scratch family proof (`n` nodes
    /// dirty, `n` labels written). No-op when observability is disabled.
    fn obs_note_from_scratch(&self, family: Family, n: u64) {
        if self.obs.is_enabled() {
            self.obs.emit(TraceEvent::Repair {
                layer: Layer::Engine,
                wave: self.obs_current_wave(),
                family,
                dirty_nodes: n,
                labels_written: n,
            });
        }
    }

    /// The FR marking / fragment-propagation wave of the MDST composition (§VIII),
    /// recomputed every iteration in both relabel modes (it is derived from tree
    /// degrees, not maintained as a label family).
    fn charge_fr_marking(&mut self) {
        let tree = &self.state.as_ref().expect("tree built").tree;
        self.ledger.charge(
            "FR marking and fragment propagation",
            waves::convergecast_rounds(tree) + 2 * waves::broadcast_rounds(tree),
        );
    }

    /// Per-phase register accounting: the sum of the per-family maxima, peaked over the
    /// whole run (dominated by the `O(log² n)`-bit fragment labels for MST). Sizes are
    /// codec-derived ([`Codec::encoded_bits`] under the instance's [`CodecCtx`]), i.e.
    /// exactly what the packed label store allocates — see
    /// [`CompositionEngine::packed_space`].
    fn account_register_bits(&mut self) {
        let ctx = &self.ctx;
        let task_bits = match self.task {
            EngineTask::Mst => self
                .fragments
                .as_ref()
                .expect("MST maintains fragments")
                .labels()
                .iter()
                .map(|l| l.encoded_bits(ctx))
                .max()
                .unwrap_or(0),
            EngineTask::Mdst => {
                let tree = &self.state.as_ref().expect("tree built").tree;
                if stst_graph::fr::is_fr_tree(&self.graph, tree) {
                    let scheme = stst_labeling::fr_labels::FrScheme;
                    let labels = scheme.prove(&self.graph, tree);
                    labels
                        .iter()
                        .map(|l| scheme.label_bits(ctx, l))
                        .max()
                        .unwrap_or(0)
                } else {
                    // While not yet an FR-tree the nodes carry the same fields (degree,
                    // mark, fragment pointer): two counters, two flags, one identity
                    // and one more counter at the instance's field widths.
                    2 * (1 + ctx.count_bits as usize)
                        + 2
                        + (1 + ctx.ident_bits as usize)
                        + (1 + ctx.count_bits as usize)
                }
            }
        };
        let nca_bits = self
            .nca
            .iter()
            .map(|l| l.encoded_bits(ctx))
            .max()
            .unwrap_or(0);
        let red_bits = self
            .redundant
            .iter()
            .map(|l| RedundantScheme.label_bits(ctx, l))
            .max()
            .unwrap_or(0);
        self.max_register_bits = self.max_register_bits.max(task_bits + nca_bits + red_bits);
    }

    /// Packs every maintained label family into a fresh [`ConfigStore`] and reports the
    /// measured allocation against the accounted bits — the `measured B/node` column of
    /// the E5/E7/E11 space tables. The engine repairs its families on decoded working
    /// sets between waves; this materializes the silent configuration the way the
    /// runtime's packed executor stores registers, so the number is an *allocation
    /// measurement*, not a formula.
    ///
    /// # Panics
    ///
    /// Panics before the first labeling wave.
    pub fn packed_space(&self) -> StoreReport {
        let ctx = &self.ctx;
        let n = self.graph.node_count().max(1);
        let mut measured_bytes = 0usize;
        let mut accounted_bits = 0u64;
        if let Some(fragments) = self.fragments.as_ref() {
            let store = ConfigStore::packed_from_slice(fragments.labels(), ctx);
            measured_bytes += store.measured().bytes;
            accounted_bits += store.accounted_bits(ctx);
        }
        assert!(!self.nca.is_empty(), "packed_space needs a labeled engine");
        let store = ConfigStore::packed_from_slice(&self.nca, ctx);
        measured_bytes += store.measured().bytes;
        accounted_bits += store.accounted_bits(ctx);
        let store = ConfigStore::packed_from_slice(&self.redundant, ctx);
        measured_bytes += store.measured().bytes;
        accounted_bits += store.accounted_bits(ctx);
        StoreReport {
            mode: StoreMode::Packed,
            measured_bytes,
            accounted_bits,
            bytes_per_node: measured_bytes as f64 / n as f64,
            accounted_bits_per_node: accounted_bits as f64 / n as f64,
        }
    }

    fn improve(&mut self) -> PhaseEvent {
        match self.task {
            EngineTask::Mst => self.improve_mst(),
            EngineTask::Mdst => self.improve_mdst(),
        }
    }

    fn improve_mst(&mut self) -> PhaseEvent {
        let fragments = self.fragments.as_ref().expect("MST maintains fragments");
        let tree = &self.state.as_ref().expect("tree built").tree;
        let Some((add, remove)) = fragments.improving_swap(&self.graph, tree) else {
            self.legal = stst_graph::mst::is_mst(&self.graph, tree);
            self.account_register_bits();
            self.phase = Phase::Done;
            return PhaseEvent::Stabilized { legal: self.legal };
        };
        self.improvements += 1;
        match self.config.relabel {
            Relabel::Incremental => self.switch_incremental(add, remove),
            Relabel::FromScratch => self.switch_from_scratch(add, remove),
        }
    }

    /// Applies `T ← T + add − remove` directly on the maintained parent vector (the
    /// path-reversal of §IV, without materializing the staged configurations) and
    /// leaves the dirty region pending for the next labeling wave.
    fn switch_incremental(&mut self, add: EdgeId, remove: EdgeId) -> PhaseEvent {
        let state = self.state.as_mut().expect("tree built");
        let old_height = state.height();
        let add_edge = self.graph.edge(add);
        let remove_edge = self.graph.edge(remove);
        // The child-side endpoint of the removed edge roots the detached subtree.
        let child_side = if state.parents[remove_edge.u.0] == Some(remove_edge.v) {
            remove_edge.u
        } else {
            remove_edge.v
        };
        let in_detached = |mut x: NodeId, parents: &[Option<NodeId>]| loop {
            if x == child_side {
                return true;
            }
            match parents[x.0] {
                Some(p) => x = p,
                None => return false,
            }
        };
        let (inside, outside) = if in_detached(add_edge.u, &state.parents) {
            (add_edge.u, add_edge.v)
        } else {
            (add_edge.v, add_edge.u)
        };
        // Reparenting path: from the inside endpoint of `add` up to the child side of
        // `remove`; each hop reverses one parent pointer.
        let mut path = vec![inside];
        let mut cur = inside;
        while cur != child_side {
            cur = state.parents[cur.0].expect("child_side is an ancestor of inside");
            path.push(cur);
        }
        let mut changes: Vec<(NodeId, NodeId)> = Vec::with_capacity(path.len());
        changes.push((inside, outside));
        for pair in path.windows(2) {
            changes.push((pair[1], pair[0]));
        }
        let region = state.apply_parent_changes(&changes);
        let new_height = state.height();
        // Same pipelined round charge as the staged switch module: one pruning and one
        // relabeling wave plus two rounds per local switch.
        let rounds = 2 * (old_height + 1) + 2 * path.len() as u64 + 2 * (new_height + 1);
        self.ledger.charge("loop-free edge switch", rounds);
        let dirty_height = region.height_in(&state.depths);
        self.pending = Some(PendingRepair {
            swap: Some((add, remove)),
            region,
            path_len: path.len() as u64,
            dirty_height,
        });
        self.phase = Phase::Label;
        PhaseEvent::Switched {
            local_switches: path.len(),
            rounds,
        }
    }

    /// The staged reference switch: every intermediate configuration is generated with
    /// from-scratch redundant reproofs (as in the seed), and all label families are
    /// rebuilt by the next labeling wave.
    fn switch_from_scratch(&mut self, add: EdgeId, remove: EdgeId) -> PhaseEvent {
        let state = self.state.as_mut().expect("tree built");
        let outcome = loop_free_switch(&self.graph, &state.tree, add, remove);
        self.ledger.charge("loop-free edge switch", outcome.rounds);
        // The staged machinery re-proves the full redundant labeling once per local
        // switch (its relabeling phase) — that is the work the incremental mode saves.
        self.labels_written += outcome.local_switches as u64 * self.graph.node_count() as u64;
        let rounds = outcome.rounds;
        let local_switches = outcome.local_switches;
        *state = TreeState::new(outcome.tree);
        self.pending = None;
        self.phase = Phase::Label;
        PhaseEvent::Switched {
            local_switches,
            rounds,
        }
    }

    fn improve_mdst(&mut self) -> PhaseEvent {
        let state = self.state.as_mut().expect("tree built");
        let Some(next) = improve_once(&self.graph, &state.tree) else {
            self.legal = fr_certificate(&self.graph, &state.tree).is_some();
            self.account_register_bits();
            self.phase = Phase::Done;
            return PhaseEvent::Stabilized { legal: self.legal };
        };
        self.improvements += 1;
        // Charge the well-nested swap sequence: each swapped edge goes through a
        // loop-free switch whose pipelined cost is O(height + path).
        let swapped = edge_difference(&self.graph, &state.tree, &next);
        let per_switch = 2 * waves::broadcast_rounds(&state.tree)
            + 2 * waves::convergecast_rounds(&state.tree)
            + 2;
        let rounds = per_switch * swapped.max(1) as u64;
        self.ledger.charge("well-nested loop-free switches", rounds);
        let changes: Vec<(NodeId, NodeId)> = next
            .parents()
            .iter()
            .enumerate()
            .filter_map(|(i, &p)| {
                let v = NodeId(i);
                match (state.parents[i], p) {
                    (Some(old), Some(new)) if old != new => Some((v, new)),
                    _ => None,
                }
            })
            .collect();
        match self.config.relabel {
            Relabel::Incremental => {
                let region = state.apply_parent_changes(&changes);
                debug_assert_eq!(state.tree, next, "parent diff reproduces the new tree");
                let dirty_height = region.height_in(&state.depths);
                self.pending = Some(PendingRepair {
                    swap: None,
                    region,
                    path_len: changes.len() as u64,
                    dirty_height,
                });
            }
            Relabel::FromScratch => {
                *state = TreeState::new(next);
                self.pending = None;
            }
        }
        self.phase = Phase::Label;
        PhaseEvent::Switched {
            local_switches: swapped.max(1),
            rounds,
        }
    }

    /// Injects `k` random single-label faults across the maintained families (the
    /// wave-boundary fault hook of experiment E8b). Only meaningful once labels exist
    /// and between waves — i.e. after a [`PhaseEvent::LabelsReady`] or
    /// [`PhaseEvent::Stabilized`] — so the next [`step`](CompositionEngine::step) runs
    /// the verification wave and rebuilds exactly the rejected families. Returns the
    /// nodes hit.
    ///
    /// # Panics
    ///
    /// Panics if called before the first labeling wave or while a label repair is
    /// pending (mid-switch).
    pub fn corrupt_random_labels(&mut self, k: usize) -> Vec<NodeId> {
        assert!(
            !self.nca.is_empty() && self.pending.is_none(),
            "label corruption is a wave-boundary fault"
        );
        let n = self.graph.node_count();
        let families = if self.task == EngineTask::Mst { 3 } else { 2 };
        let mut hit = Vec::with_capacity(k);
        for i in 0..k {
            let v = NodeId(self.rng.gen_range(0..n));
            match i % families {
                0 => {
                    let label = &mut self.redundant[v.0];
                    label.dist = Some(label.dist.unwrap_or(0) + 3);
                }
                1 => {
                    let segment = self.nca[v.0]
                        .segments
                        .last_mut()
                        .expect("labels are never empty");
                    segment.depth += 1;
                }
                _ => {
                    let labels = self
                        .fragments
                        .as_mut()
                        .expect("MST maintains fragments")
                        .labels_mut();
                    let level = labels[v.0].levels.last_mut().expect("non-empty trace");
                    level.fragment += 1;
                }
            }
            hit.push(v);
        }
        self.corrupted = true;
        if !hit.is_empty() && self.obs.is_enabled() {
            self.obs
                .counter("engine_corruptions_injected")
                .add(hit.len() as u64);
            self.obs.emit(TraceEvent::CorruptionInjected {
                layer: Layer::Engine,
                wave: self.obs_current_wave(),
                nodes: hit.len() as u64,
            });
        }
        hit
    }

    /// Runs a family's 1-round proof-labeling verification wave: every node checks its
    /// own label against its neighbors'. The per-node verifiers are independent pure
    /// reads, so big networks are verified shard-parallel on the pool; the outcome
    /// ("did any node reject") is a commutative OR, identical at any thread count.
    fn verification_wave_accepts<S>(
        &self,
        scheme: &S,
        instance: &Instance<'_>,
        labels: &[S::Label],
    ) -> bool
    where
        S: ProofLabelingScheme + Sync,
        S::Label: Sync,
    {
        let n = self.graph.node_count();
        if !self.pool.is_parallel() || n < PAR_VERIFY_MIN {
            return scheme.verify_all(instance, labels).accepted();
        }
        self.pool
            .run(n, |_, range| {
                range
                    .into_iter()
                    .all(|i| scheme.verify_at(instance, labels, NodeId(i)))
            })
            .into_iter()
            .all(|shard_accepted| shard_accepted)
    }

    /// The recovery wave: run every family's 1-round proof-labeling verifier, rebuild
    /// the families some node rejected, and charge the measured cost.
    fn recover(&mut self) -> PhaseEvent {
        self.corrupted = false;
        let state = self.state.as_ref().expect("tree built");
        let tree = &state.tree;
        let instance = Instance::from_tree(&self.graph, tree);
        let written_before = self.labels_written;
        let n = self.graph.node_count() as u64;
        let mut families_rebuilt = 0usize;
        let mut rounds = 1u64; // the verification wave itself
        if let Some(fragments) = self.fragments.as_ref() {
            if !self.verification_wave_accepts(&FragmentScheme, &instance, fragments.labels()) {
                let fresh = FragmentState::new_with_pool(&self.graph, tree, &self.pool);
                rounds += waves::fragment_labeling_rounds(tree, fresh.level_count());
                self.fragments = Some(fresh);
                self.labels_written += n;
                families_rebuilt += 1;
                self.obs_note_from_scratch(Family::Fragments, n);
            }
        }
        if !self.verification_wave_accepts(&NcaScheme, &instance, &self.nca) {
            self.nca = assign_nca_labels(&self.graph, tree);
            rounds += waves::nca_labeling_rounds(tree);
            self.labels_written += n;
            families_rebuilt += 1;
            self.obs_note_from_scratch(Family::Nca, n);
        }
        if !self.verification_wave_accepts(&RedundantScheme, &instance, &self.redundant) {
            self.redundant = RedundantScheme.prove(&self.graph, tree);
            rounds += waves::convergecast_rounds(tree) + waves::broadcast_rounds(tree);
            self.labels_written += n;
            families_rebuilt += 1;
            self.obs_note_from_scratch(Family::Redundant, n);
        }
        self.ledger.charge("label corruption recovery", rounds);
        if families_rebuilt > 0 {
            self.obs
                .counter("engine_families_rebuilt")
                .add(families_rebuilt as u64);
        }
        if self.phase == Phase::Done {
            // Re-examine silence: the rebuilt labels certify the unchanged tree, so the
            // next improve step re-reports stabilization.
            self.phase = Phase::Improve;
        }
        PhaseEvent::Recovered {
            families_rebuilt,
            labels_written: self.labels_written - written_before,
            rounds,
        }
    }

    /// Installs **stale-but-consistent certificates**: NCA and redundant labels that
    /// are a perfectly valid proof — for a *different* spanning tree (a deterministic
    /// BFS tree rooted at the maximum identity, where the maintained tree is rooted at
    /// the minimum). Unlike the random single-label garbage of
    /// [`corrupt_random_labels`](CompositionEngine::corrupt_random_labels), every
    /// label is locally plausible; only the cross-neighbor verification wave can tell
    /// the certificate proves the wrong tree. This is the adversarial shape a restored
    /// checkpoint takes after topology churn, so the crash-injection tests drive it
    /// through the same recovery path.
    ///
    /// Returns `true` iff the installed certificates actually differ from the
    /// maintained families (on graphs whose BFS tree coincides with the maintained
    /// tree the injection is a no-op and the verification wave accepts).
    ///
    /// # Panics
    ///
    /// Panics if called before the first labeling wave or while a label repair is
    /// pending (mid-switch) — like every wave-boundary fault hook.
    pub fn corrupt_stale_certificates(&mut self) -> bool {
        assert!(
            !self.nca.is_empty() && self.pending.is_none(),
            "label corruption is a wave-boundary fault"
        );
        let n = self.graph.node_count();
        let root = self
            .graph
            .nodes()
            .max_by_key(|&v| self.graph.ident(v))
            .expect("non-empty network");
        let mut parents: Vec<Option<NodeId>> = vec![None; n];
        let mut seen = vec![false; n];
        seen[root.0] = true;
        let mut queue = std::collections::VecDeque::from([root]);
        while let Some(x) = queue.pop_front() {
            for &(w, _) in self.graph.neighbors(x) {
                if !seen[w.0] {
                    seen[w.0] = true;
                    parents[w.0] = Some(x);
                    queue.push_back(w);
                }
            }
        }
        let stale_tree = Tree::from_parents_unchecked(parents, root);
        let (stale_nca, stale_redundant) = self.pool.join(
            || assign_nca_labels(&self.graph, &stale_tree),
            || RedundantScheme.prove(&self.graph, &stale_tree),
        );
        let differs = stale_nca != self.nca || stale_redundant != self.redundant;
        self.nca = stale_nca;
        self.redundant = stale_redundant;
        self.corrupted = true;
        if self.obs.is_enabled() {
            self.obs
                .counter("engine_corruptions_injected")
                .add(n as u64);
            self.obs.emit(TraceEvent::CorruptionInjected {
                layer: Layer::Engine,
                wave: self.obs_current_wave(),
                nodes: n as u64,
            });
        }
        differs
    }

    /// Serializes the engine's complete persistent state into a versioned,
    /// checksummed [`Snapshot`]: the (possibly churned) network itself, the task and
    /// configuration, the phase, the maintained tree, all three label families as
    /// packed codec bitstreams, the round ledger, the work counters and the fault RNG
    /// stream.
    ///
    /// An in-flight label repair ([`PhaseEvent::Switched`] taken, labeling wave not
    /// yet run) is deliberately **not** serialized: a mid-repair snapshot is an
    /// arbitrary configuration, and [`CompositionEngine::restore`] hands it to the
    /// verification wave exactly as the paper prescribes for any arbitrary initial
    /// configuration (DESIGN.md §2.11). Checkpointing at a wave boundary — the
    /// [`stst-churn` driver's discipline] — restores verbatim instead.
    ///
    /// [`stst-churn` driver's discipline]: PhaseEvent
    pub fn checkpoint(&self) -> Snapshot {
        let timer = self.obs.is_enabled().then(std::time::Instant::now);
        let n = self.graph.node_count();
        let mut words: Vec<u64> = vec![match self.task {
            EngineTask::Mst => 0,
            EngineTask::Mdst => 1,
        }];
        words.push(self.config.seed);
        words.push(self.config.scheduler.tag());
        words.push(self.config.max_steps);
        words.push(match self.config.relabel {
            Relabel::Incremental => 0,
            Relabel::FromScratch => 1,
        });
        words.push(self.phase.tag());
        words.push(self.corrupted as u64);
        words.extend_from_slice(&self.rng.state());
        words.push(self.improvements as u64);
        words.push(self.labels_written);
        words.push(self.max_register_bits as u64);
        words.push(self.legal as u64);
        words.push(n as u64);
        words.extend(self.graph.nodes().map(|v| self.graph.ident(v)));
        words.push(self.graph.edge_count() as u64);
        for e in self.graph.edges() {
            words.push(e.u.0 as u64);
            words.push(e.v.0 as u64);
            words.push(e.weight);
        }
        let entries = self.ledger.by_phase();
        words.push(self.ledger.charges() as u64);
        words.push(entries.len() as u64);
        for (label, rounds) in entries {
            push_bytes(&mut words, label.as_bytes());
            words.push(rounds);
        }
        match self.state.as_ref() {
            None => words.push(0),
            Some(state) => {
                words.push(1);
                words.push(state.root.0 as u64);
                words.extend(
                    state
                        .parents
                        .iter()
                        .map(|p| p.map_or(0, |p| p.0 as u64 + 1)),
                );
            }
        }
        match self.fragments.as_ref() {
            None => words.push(0),
            Some(fragments) => {
                words.push(1);
                push_labels(&mut words, fragments.labels(), &self.ctx);
            }
        }
        if self.nca.is_empty() {
            words.push(0);
        } else {
            words.push(1);
            push_labels(&mut words, &self.nca, &self.ctx);
            push_labels(&mut words, &self.redundant, &self.ctx);
        }
        let snapshot = Snapshot::new(KIND_ENGINE, words);
        if let Some(started) = timer {
            self.obs.emit(TraceEvent::Checkpoint {
                layer: Layer::Engine,
                wave: self.obs_current_wave(),
                bytes: snapshot.byte_len() as u64,
                ms: started.elapsed().as_secs_f64() * 1e3,
            });
        }
        snapshot
    }

    /// Rebuilds an engine from a [`Snapshot`] written by
    /// [`CompositionEngine::checkpoint`]. The snapshot carries its own network (the
    /// graph churns under topology events), so the restored engine owns its graph and
    /// has a `'static` lifetime; `threads` is the one representation choice the
    /// restoring process supplies.
    ///
    /// Restore **is** self-stabilization: the checkpointed labels are compared
    /// against fresh proofs for the checkpointed tree, and
    ///
    /// * a clean wave-boundary snapshot restores **verbatim** — zero extra rounds,
    ///   zero label writes: stepping the restored engine is bit-identical to stepping
    ///   the one that never stopped, counters included;
    /// * a mid-repair snapshot (labels stale for the already-switched tree) triggers
    ///   the verification wave at restore: the rejected families are rebuilt and
    ///   charged as `"label corruption recovery"`, exactly like any transient fault,
    ///   and the engine resumes at the improvement phase — re-stabilizing to the same
    ///   final configuration as the uninterrupted run;
    /// * a snapshot taken with unresolved injected corruption restores the corrupted
    ///   labels verbatim and keeps the corrupted flag, so the next
    ///   [`step`](CompositionEngine::step) runs the same recovery the uninterrupted
    ///   engine would have run.
    ///
    /// # Errors
    ///
    /// Returns a typed [`RestoreError`] — never panics, never loads garbage — on a
    /// snapshot of the wrong kind or with a payload that does not parse (including
    /// parent vectors that do not encode a spanning tree of the embedded graph).
    pub fn restore(
        snapshot: &Snapshot,
        threads: usize,
    ) -> Result<(CompositionEngine<'static>, RestoreOutcome), RestoreError> {
        snapshot.expect_kind(KIND_ENGINE)?;
        let mut r = SnapshotReader::new(snapshot);
        let task = match r.next_word()? {
            0 => EngineTask::Mst,
            1 => EngineTask::Mdst,
            _ => return Err(RestoreError::Malformed("unknown engine task")),
        };
        let seed = r.next_word()?;
        let scheduler = stst_runtime::SchedulerKind::from_tag(r.next_word()?)
            .ok_or(RestoreError::Malformed("unknown scheduler kind"))?;
        let max_steps = r.next_word()?;
        let relabel = match r.next_word()? {
            0 => Relabel::Incremental,
            1 => Relabel::FromScratch,
            _ => return Err(RestoreError::Malformed("unknown relabel mode")),
        };
        let phase = Phase::from_tag(r.next_word()?)
            .ok_or(RestoreError::Malformed("unknown engine phase"))?;
        let corrupted = r.next_word()? != 0;
        let rng_state = [
            r.next_word()?,
            r.next_word()?,
            r.next_word()?,
            r.next_word()?,
        ];
        let improvements = usize::try_from(r.next_word()?)
            .map_err(|_| RestoreError::Malformed("improvement count exceeds usize"))?;
        let labels_written = r.next_word()?;
        let max_register_bits = r.next_usize()?;
        let legal = r.next_word()? != 0;
        let n = r.next_usize()?;
        if n == 0 {
            return Err(RestoreError::Malformed("empty network"));
        }
        let idents = r.take(n)?.to_vec();
        let m = r.next_usize()?;
        let mut edges: Vec<(usize, usize, Weight)> = Vec::with_capacity(m);
        for _ in 0..m {
            let u = r.next_usize()?;
            let v = r.next_usize()?;
            let w = r.next_word()?;
            if u >= n || v >= n {
                return Err(RestoreError::Malformed("edge endpoint out of range"));
            }
            edges.push((u, v, w));
        }
        let charges = r.next_usize()?;
        let entry_count = r.next_usize()?;
        let mut entries: Vec<(&'static str, u64)> = Vec::with_capacity(entry_count);
        for _ in 0..entry_count {
            let bytes = read_bytes(&mut r)?;
            let label = KNOWN_CHARGE_LABELS
                .iter()
                .find(|&&known| known.as_bytes() == bytes.as_slice())
                .copied()
                .unwrap_or(UNATTRIBUTED_LABEL);
            entries.push((label, r.next_word()?));
        }
        let mut graph = Graph::from_edges(n, &edges);
        graph.set_idents(idents);
        let ctx = CodecCtx::for_graph(&graph);
        let state = match r.next_word()? {
            0 => None,
            1 => {
                let root = NodeId(r.next_usize()?);
                let mut parents: Vec<Option<NodeId>> = Vec::with_capacity(n);
                for &w in r.take(n)? {
                    parents.push(match w {
                        0 => None,
                        p => {
                            let p = usize::try_from(p - 1)
                                .map_err(|_| RestoreError::Malformed("parent exceeds usize"))?;
                            if p >= n {
                                return Err(RestoreError::Malformed("parent out of range"));
                            }
                            Some(NodeId(p))
                        }
                    });
                }
                let tree = Tree::from_parents_in(&graph, parents).map_err(|_| {
                    RestoreError::Malformed("parents do not encode a spanning tree")
                })?;
                if tree.root() != root {
                    return Err(RestoreError::Malformed("root disagrees with parents"));
                }
                Some(TreeState::new(tree))
            }
            _ => return Err(RestoreError::Malformed("bad tree presence flag")),
        };
        let snapshot_fragments: Option<Vec<FragmentLabel>> = match r.next_word()? {
            0 => None,
            1 => Some(read_labels(&mut r, n, &ctx)?),
            _ => return Err(RestoreError::Malformed("bad fragment presence flag")),
        };
        let (snapshot_nca, snapshot_redundant): (Vec<NcaLabel>, Vec<RedundantLabel>) =
            match r.next_word()? {
                0 => (Vec::new(), Vec::new()),
                1 => (read_labels(&mut r, n, &ctx)?, read_labels(&mut r, n, &ctx)?),
                _ => return Err(RestoreError::Malformed("bad label presence flag")),
            };
        r.expect_exhausted()?;
        if state.is_none()
            && (corrupted || snapshot_fragments.is_some() || !snapshot_nca.is_empty())
        {
            return Err(RestoreError::Malformed("labels without a tree"));
        }
        let mut engine = CompositionEngine {
            graph: Cow::Owned(graph),
            ctx,
            task,
            config: EngineConfig {
                seed,
                scheduler,
                max_steps,
                relabel,
                threads: threads.max(1),
            },
            phase,
            state,
            fragments: None,
            nca: Vec::new(),
            redundant: Vec::new(),
            pending: None,
            corrupted,
            rng: StdRng::from_state(rng_state),
            pool: ThreadPool::new(threads.max(1)),
            ledger: RoundLedger::restore(entries, charges),
            improvements,
            labels_written,
            max_register_bits,
            legal,
            obs: Obs::disabled(),
            obs_wave: None,
        };
        let mut outcome = RestoreOutcome {
            families_rebuilt: 0,
            rounds: 0,
        };
        if engine.state.is_none() || snapshot_nca.is_empty() {
            // Pre-labeling snapshot: nothing to verify, the next step builds (or
            // labels) from scratch exactly like the uninterrupted run.
            return Ok((engine, outcome));
        }
        let tree = &engine.state.as_ref().expect("checked above").tree;
        if corrupted {
            // Unresolved injected corruption travels through the snapshot verbatim:
            // the next step runs the same recovery wave the uninterrupted engine
            // would have run, with bit-identical outcome. The fragment per-level
            // structure is rebuilt consistent with the tree — exactly the shape the
            // uninterrupted engine had, whose corruption hook edits labels only.
            engine.fragments = snapshot_fragments.map(|labels| {
                let mut fragments = FragmentState::new_with_pool(&engine.graph, tree, &engine.pool);
                for (slot, label) in fragments.labels_mut().iter_mut().zip(labels) {
                    *slot = label;
                }
                fragments
            });
            engine.nca = snapshot_nca;
            engine.redundant = snapshot_redundant;
            return Ok((engine, outcome));
        }
        // Restore is self-stabilization: the checkpointed families are an arbitrary
        // configuration until they are verified against fresh proofs for the restored
        // tree. A clean wave-boundary snapshot matches and restores verbatim (zero
        // charges); a mid-repair snapshot has stale families, which are rebuilt and
        // charged exactly like transient-fault recovery.
        let graph: &Graph = &engine.graph;
        let want_fragments = snapshot_fragments.is_some();
        let (fresh_fragments, (fresh_nca, fresh_redundant)) = engine.pool.join(
            || want_fragments.then(|| FragmentState::new_with_pool(graph, tree, &engine.pool)),
            || {
                engine.pool.join(
                    || assign_nca_labels(graph, tree),
                    || RedundantScheme.prove(graph, tree),
                )
            },
        );
        let mut rebuild_rounds = 0u64;
        if let (Some(snapshot_labels), Some(fresh)) = (&snapshot_fragments, &fresh_fragments) {
            if snapshot_labels.as_slice() != fresh.labels() {
                outcome.families_rebuilt += 1;
                rebuild_rounds += waves::fragment_labeling_rounds(tree, fresh.level_count());
                engine.labels_written += n as u64;
            }
        }
        engine.fragments = fresh_fragments;
        if snapshot_nca != fresh_nca {
            outcome.families_rebuilt += 1;
            rebuild_rounds += waves::nca_labeling_rounds(tree);
            engine.labels_written += n as u64;
        }
        engine.nca = fresh_nca;
        if snapshot_redundant != fresh_redundant {
            outcome.families_rebuilt += 1;
            rebuild_rounds += waves::convergecast_rounds(tree) + waves::broadcast_rounds(tree);
            engine.labels_written += n as u64;
        }
        engine.redundant = fresh_redundant;
        if outcome.families_rebuilt > 0 {
            outcome.rounds = 1 + rebuild_rounds; // the verification wave + the rebuilds
            engine
                .ledger
                .charge("label corruption recovery", outcome.rounds);
            // The restored families are now exact for the tree, so the pending label
            // wave (mid-repair snapshot) or the silence re-examination (stale Done
            // snapshot) both land at the improvement phase.
            if engine.phase == Phase::Label || engine.phase == Phase::Done {
                engine.phase = Phase::Improve;
            }
        }
        Ok((engine, outcome))
    }
}

/// Finds the minimum-weight graph edge reconnecting the orphaned subtree rooted at
/// `child_side` (whose parent edge was deleted by a topology mutation) to the rest of
/// the tree, and the parent-pointer reversal attaching it — the same reversal shape a
/// loop-free switch uses, so [`TreeState::apply_parent_changes`] yields the exact
/// dirty region. Returns `None` only if the subtree has no outgoing edge, i.e. the
/// graph is disconnected (which [`CompositionEngine::apply_topology`] rules out before
/// committing). Members' incident edges are scanned in the CSR's precomputed weight
/// order, so the search early-exits like the fragment repair scans.
fn reanchor_changes(
    graph: &Graph,
    state: &TreeState,
    child_side: NodeId,
) -> Option<(EdgeId, Vec<(NodeId, NodeId)>)> {
    let n = state.parents.len();
    let mut in_subtree = vec![false; n];
    let mut members: Vec<NodeId> = Vec::new();
    let mut stack = vec![child_side];
    while let Some(x) = stack.pop() {
        if in_subtree[x.0] {
            continue;
        }
        in_subtree[x.0] = true;
        members.push(x);
        stack.extend(state.children[x.0].iter().copied());
    }
    let mut best: Option<(Weight, EdgeId)> = None;
    for &v in &members {
        let nbrs = graph.neighbors(v);
        for &k in graph.neighbor_order_by_weight(v) {
            let (w, e) = nbrs[k as usize];
            let weight = graph.weight(e);
            if let Some((best_w, best_e)) = best {
                if weight > best_w {
                    break; // ascending order: nothing later in this list can win
                }
                if weight == best_w && e.index() >= best_e.index() {
                    continue;
                }
            }
            if in_subtree[w.0] {
                continue;
            }
            best = Some((weight, e));
        }
    }
    let (_, anchor) = best?;
    let anchor_edge = graph.edge(anchor);
    let (inside, outside) = if in_subtree[anchor_edge.u.0] {
        (anchor_edge.u, anchor_edge.v)
    } else {
        (anchor_edge.v, anchor_edge.u)
    };
    // Reverse the parent pointers from the inside endpoint up to the orphan root,
    // exactly as `switch_incremental` does (the stale pointer of `child_side` across
    // the deleted edge is overwritten by the last reversal).
    let mut path = vec![inside];
    let mut cur = inside;
    while cur != child_side {
        cur = state.parents[cur.0].expect("child_side is an ancestor of inside");
        path.push(cur);
    }
    let mut changes: Vec<(NodeId, NodeId)> = Vec::with_capacity(path.len());
    changes.push((inside, outside));
    for pair in path.windows(2) {
        changes.push((pair[1], pair[0]));
    }
    Some((anchor, changes))
}

/// Number of edges in which two spanning trees of the same graph differ (half of the
/// symmetric difference).
pub(crate) fn edge_difference(graph: &Graph, a: &Tree, b: &Tree) -> usize {
    let ea: std::collections::HashSet<EdgeId> = a.edge_ids_in(graph).into_iter().collect();
    let eb: std::collections::HashSet<EdgeId> = b.edge_ids_in(graph).into_iter().collect();
    ea.symmetric_difference(&eb).count() / 2
}

#[cfg(test)]
mod tests {
    use super::*;
    use stst_graph::generators;
    use stst_graph::mst::kruskal;

    #[test]
    fn engine_steps_through_the_documented_phase_sequence() {
        let g = generators::workload(18, 0.3, 2);
        let mut engine = CompositionEngine::new(&g, EngineTask::Mst, EngineConfig::seeded(2));
        assert!(matches!(
            engine.step(),
            PhaseEvent::TreeConstructed { rounds } if rounds > 0
        ));
        assert!(matches!(engine.step(), PhaseEvent::LabelsReady { .. }));
        let mut switches = 0;
        loop {
            match engine.step() {
                PhaseEvent::Switched { local_switches, .. } => {
                    assert!(local_switches >= 1);
                    switches += 1;
                    assert!(matches!(engine.step(), PhaseEvent::LabelsReady { .. }));
                }
                PhaseEvent::Stabilized { legal } => {
                    assert!(legal);
                    break;
                }
                other => panic!("unexpected event {other:?}"),
            }
            assert!(switches < 500);
        }
        assert!(engine.is_stabilized());
        // Stepping a stabilized engine is idempotent.
        assert!(matches!(
            engine.step(),
            PhaseEvent::Stabilized { legal: true }
        ));
        let report = engine.report();
        let opt = kruskal(&g).unwrap().total_weight(&g);
        assert_eq!(report.tree.total_weight(&g), opt);
        assert_eq!(report.improvements, switches);
    }

    #[test]
    fn incremental_and_from_scratch_modes_agree_on_the_result() {
        for seed in 0..4 {
            let g = generators::workload(22, 0.25, seed);
            for task in [EngineTask::Mst, EngineTask::Mdst] {
                let mut inc = CompositionEngine::new(&g, task, EngineConfig::seeded(seed));
                let mut full = CompositionEngine::new(
                    &g,
                    task,
                    EngineConfig::seeded(seed).with_relabel(Relabel::FromScratch),
                );
                let a = inc.run();
                let b = full.run();
                assert_eq!(a.tree, b.tree, "seed {seed} {task:?}");
                assert_eq!(a.improvements, b.improvements, "seed {seed} {task:?}");
                assert!(a.legal && b.legal, "seed {seed} {task:?}");
                assert!(
                    a.labels_written <= b.labels_written,
                    "seed {seed} {task:?}: incremental wrote {} vs {}",
                    a.labels_written,
                    b.labels_written
                );
            }
        }
    }

    #[test]
    fn corruption_between_waves_is_detected_and_repaired() {
        let g = generators::workload(20, 0.3, 7);
        let mut engine = CompositionEngine::new(&g, EngineTask::Mst, EngineConfig::seeded(7));
        let report = engine.run();
        assert!(report.legal);
        let tree_before = engine.tree().clone();
        let hit = engine.corrupt_random_labels(5);
        assert_eq!(hit.len(), 5);
        let event = engine.step();
        let PhaseEvent::Recovered {
            families_rebuilt,
            labels_written,
            rounds,
        } = event
        else {
            panic!("expected recovery, got {event:?}");
        };
        assert!(families_rebuilt >= 1);
        assert!(labels_written > 0);
        assert!(rounds > 1);
        // The tree is untouched and the engine re-stabilizes immediately.
        assert!(matches!(
            engine.step(),
            PhaseEvent::Stabilized { legal: true }
        ));
        assert_eq!(engine.tree(), &tree_before);
        // The rebuilt labels match fresh proofs.
        assert_eq!(
            engine.nca_labels(),
            assign_nca_labels(&g, &tree_before).as_slice()
        );
    }

    #[test]
    fn topology_deltas_restabilize_on_the_mutated_graph() {
        use stst_labeling::redundant::RedundantScheme;
        use stst_labeling::scheme::ProofLabelingScheme;
        for seed in 0..4 {
            let g = generators::workload(20, 0.3, seed);
            let mut engine =
                CompositionEngine::new(&g, EngineTask::Mst, EngineConfig::seeded(seed));
            assert!(engine.run().legal);
            let assert_consistent = |engine: &CompositionEngine<'_>, what: &str| {
                let g = engine.graph();
                let t = engine.tree();
                assert!(t.is_spanning_tree_of(g), "seed {seed}: {what}");
                assert_eq!(
                    t.total_weight(g),
                    kruskal(g).unwrap().total_weight(g),
                    "seed {seed}: {what}"
                );
                assert_eq!(
                    engine.fragment_labels().unwrap(),
                    stst_labeling::mst_fragments::assign_fragment_labels(g, t).as_slice(),
                    "seed {seed}: {what}"
                );
                assert_eq!(
                    engine.nca_labels(),
                    assign_nca_labels(g, t).as_slice(),
                    "seed {seed}: {what}"
                );
                assert_eq!(
                    engine.redundant_labels(),
                    RedundantScheme.prove(g, t).as_slice(),
                    "seed {seed}: {what}"
                );
            };
            let mut next_weight = engine
                .graph()
                .edges()
                .iter()
                .map(|e| e.weight)
                .max()
                .unwrap()
                + 1;
            // Weight drift on a tree edge: the tree survives but may stop being
            // minimum; local search resumes and re-stabilizes.
            let te = engine.tree().edge_ids_in(engine.graph())[2];
            let (u, v) = {
                let e = engine.graph().edge(te);
                (e.u, e.v)
            };
            let event = engine.apply_topology(&[Mutation::SetWeight {
                u,
                v,
                weight: next_weight,
            }]);
            next_weight += 1;
            assert!(
                matches!(event, PhaseEvent::TopologyApplied { reanchored: 0, .. }),
                "seed {seed}: got {event:?}"
            );
            assert!(engine.run().legal);
            assert_consistent(&engine, "tree-edge weight drift");
            // Remove a non-bridge tree edge: its subtree re-anchors via the loop-free
            // switch machinery.
            let removable = engine
                .tree()
                .edge_ids_in(engine.graph())
                .into_iter()
                .find(|&e| {
                    let ed = *engine.graph().edge(e);
                    let mut trial = engine.graph().clone();
                    trial.remove_edge(ed.u, ed.v);
                    trial.is_connected()
                })
                .expect("some tree edge has a replacement");
            let (u, v) = {
                let e = engine.graph().edge(removable);
                (e.u, e.v)
            };
            let event = engine.apply_topology(&[Mutation::RemoveEdge { u, v }]);
            let PhaseEvent::TopologyApplied { reanchored, .. } = event else {
                panic!("seed {seed}: expected a committed delta, got {event:?}");
            };
            assert_eq!(reanchored, 1, "seed {seed}");
            assert!(engine.run().legal);
            assert_consistent(&engine, "tree-edge removal");
            // Insert a fresh light edge: it must be adopted by the MST.
            let (a, b) = {
                let g = engine.graph();
                let mut found = None;
                'outer: for a in g.nodes() {
                    for b in g.nodes() {
                        if a < b && g.edge_between(a, b).is_none() {
                            found = Some((a, b));
                            break 'outer;
                        }
                    }
                }
                found.expect("sparse graphs have non-adjacent pairs")
            };
            let event = engine.apply_topology(&[Mutation::AddEdge {
                u: a,
                v: b,
                weight: 0,
            }]);
            assert!(matches!(event, PhaseEvent::TopologyApplied { .. }));
            assert!(engine.run().legal);
            assert!(
                engine.tree().contains_edge(a, b),
                "seed {seed}: weight-0 edge adopted"
            );
            assert_consistent(&engine, "edge insertion");
            let _ = next_weight;
        }
    }

    #[test]
    fn topology_delta_right_after_tree_construction_is_safe() {
        // A delta landing between TreeConstructed and the first labeling wave must
        // not leave the engine in Improve with no labels (regression: it panicked on
        // "MST maintains fragments").
        let g = generators::workload(20, 0.3, 1);
        let mut engine = CompositionEngine::new(&g, EngineTask::Mst, EngineConfig::seeded(1));
        assert!(matches!(engine.step(), PhaseEvent::TreeConstructed { .. }));
        let (a, b) = {
            let g = engine.graph();
            let mut found = None;
            'outer: for a in g.nodes() {
                for b in g.nodes() {
                    if a < b && g.edge_between(a, b).is_none() {
                        found = Some((a, b));
                        break 'outer;
                    }
                }
            }
            found.expect("sparse graphs have non-adjacent pairs")
        };
        let event = engine.apply_topology(&[Mutation::AddEdge {
            u: a,
            v: b,
            weight: 0,
        }]);
        assert!(matches!(event, PhaseEvent::TopologyApplied { .. }));
        assert!(engine.run().legal);
        assert!(engine.tree().contains_edge(a, b));
    }

    #[test]
    fn severing_deltas_are_reported_and_not_committed() {
        // 0-1-2-3 path plus chord 0-2: edge {2, 3} is a bridge.
        let g = Graph::from_edges(4, &[(0, 1, 1), (1, 2, 2), (2, 3, 3), (0, 2, 4)]);
        let mut engine = CompositionEngine::new(&g, EngineTask::Mst, EngineConfig::seeded(1));
        assert!(engine.run().legal);
        let tree_before = engine.tree().clone();
        let event = engine.apply_topology(&[Mutation::RemoveEdge {
            u: NodeId(2),
            v: NodeId(3),
        }]);
        assert_eq!(event, PhaseEvent::Partitioned { components: 2 });
        // Nothing was committed: the edge is still there, the engine still silent.
        assert!(engine.graph().edge_between(NodeId(2), NodeId(3)).is_some());
        assert!(matches!(
            engine.step(),
            PhaseEvent::Stabilized { legal: true }
        ));
        assert_eq!(engine.tree(), &tree_before);
    }

    #[test]
    fn node_churn_rebuilds_and_restabilizes() {
        let g = generators::workload(16, 0.35, 5);
        let mut engine = CompositionEngine::new(&g, EngineTask::Mst, EngineConfig::seeded(5));
        assert!(engine.run().legal);
        // A node joins with two links.
        let n = engine.graph().node_count();
        let event = engine.apply_topology(&[
            Mutation::AddNode { ident: 999 },
            Mutation::AddEdge {
                u: NodeId(n),
                v: NodeId(0),
                weight: 1_000,
            },
            Mutation::AddEdge {
                u: NodeId(n),
                v: NodeId(3),
                weight: 1_001,
            },
        ]);
        assert!(matches!(event, PhaseEvent::TopologyApplied { .. }));
        assert!(engine.run().legal);
        assert_eq!(engine.tree().node_count(), n + 1);
        // An interior node leaves; its orphans are reconnected.
        let victim = engine
            .graph()
            .nodes()
            .find(|&v| {
                let mut trial = engine.graph().clone();
                trial.remove_node(v);
                trial.is_connected()
            })
            .expect("some node is removable");
        let event = engine.apply_topology(&[Mutation::RemoveNode { v: victim }]);
        assert!(matches!(event, PhaseEvent::TopologyApplied { .. }));
        assert!(engine.run().legal);
        let g = engine.graph();
        assert_eq!(
            engine.tree().total_weight(g),
            kruskal(g).unwrap().total_weight(g)
        );
    }

    #[test]
    fn mdst_engine_stabilizes_on_certified_fr_trees() {
        let g = generators::workload(16, 0.35, 3);
        let mut engine = CompositionEngine::new(&g, EngineTask::Mdst, EngineConfig::seeded(3));
        let report = engine.run();
        assert!(report.legal);
        assert!(stst_graph::fr::is_fr_tree(&g, &report.tree));
        assert!(report.rounds_for("FR marking") > 0);
    }
}
