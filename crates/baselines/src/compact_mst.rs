//! Model of the non-silent compact self-stabilizing MST algorithms the paper compares
//! against ([17] Blin–Gradinariu–Rovedakis–Tixeuil and [51] Korman–Kutten–Masuzawa):
//! `O(log n)` bits per node, convergence in `O(n)` (resp. `O(n³)`) rounds, but a
//! verification token that keeps circulating forever — the algorithm is **not silent**.
//!
//! The model reproduces exactly the quantities the experiments compare (register bits,
//! round order, silence); the output tree is computed with the exact Borůvka oracle so
//! that quality comparisons are fair.

use stst_graph::ids::bits_for;
use stst_graph::mst::boruvka;
use stst_graph::Graph;

use crate::BaselineReport;

/// Which of the two cited compact algorithms to model.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CompactVariant {
    /// Korman–Kutten–Masuzawa (PODC 2011): uniform, `O(n)` rounds.
    KormanKuttenMasuzawa,
    /// Blin–Gradinariu–Rovedakis–Tixeuil (DISC 2009): semi-uniform, `O(n³)` rounds,
    /// loop-free.
    BlinGradinariuRovedakisTixeuil,
}

/// Runs the modelled compact non-silent MST algorithm.
///
/// # Panics
///
/// Panics if the graph is disconnected.
pub fn run(graph: &Graph, variant: CompactVariant) -> BaselineReport {
    let run = boruvka(graph).expect("the compact MST baselines assume a connected graph");
    let n = graph.node_count() as u64;
    let rounds = match variant {
        CompactVariant::KormanKuttenMasuzawa => 4 * n,
        CompactVariant::BlinGradinariuRovedakisTixeuil => n.saturating_mul(n).saturating_mul(n),
    };
    // Register content per node: parent pointer, a constant number of fragment/token
    // fields of O(log n) bits each (this is what makes these algorithms compact), but no
    // certificate that would allow the verification to stop: the token field keeps
    // cycling through O(n) values forever.
    let ident_bits = graph.ident_bits();
    let weight_bits = graph.weight_bits();
    let max_register_bits = ident_bits      // parent pointer
        + ident_bits                        // fragment identity
        + weight_bits                       // candidate outgoing edge weight
        + bits_for(n)                       // circulating token phase
        + 3; // flags
    BaselineReport {
        tree: run.tree,
        rounds,
        max_register_bits,
        silent: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stst_graph::generators;
    use stst_graph::mst::is_mst;

    #[test]
    fn outputs_an_mst_but_is_not_silent() {
        let g = generators::workload(30, 0.2, 1);
        for variant in [
            CompactVariant::KormanKuttenMasuzawa,
            CompactVariant::BlinGradinariuRovedakisTixeuil,
        ] {
            let report = run(&g, variant);
            assert!(is_mst(&g, &report.tree));
            assert!(!report.silent);
            assert!(report.max_register_bits > 0);
        }
    }

    #[test]
    fn registers_are_logarithmic_and_rounds_match_the_cited_orders() {
        let g = generators::workload(100, 0.05, 2);
        let kkm = run(&g, CompactVariant::KormanKuttenMasuzawa);
        let bgrt = run(&g, CompactVariant::BlinGradinariuRovedakisTixeuil);
        assert!(kkm.max_register_bits <= 5 * 10 + 5);
        assert!(kkm.rounds < bgrt.rounds);
        assert_eq!(bgrt.rounds, 100u64.pow(3));
    }
}
