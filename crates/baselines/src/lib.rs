//! Comparator algorithms for the experiment harness.
//!
//! The paper positions its constructions against prior art along two axes: **silence**
//! and **space**. This crate re-implements the relevant comparators at a common
//! interface so the experiments can put numbers on those comparisons:
//!
//! * [`naive_reset`] — a genuine guarded-rule spanning-tree construction that keeps only
//!   the distance half of the proof labels; it is silent and compact but, lacking the
//!   malleable redundant labels, it cannot support loop-free improvement (used as the
//!   ablation in experiment E9);
//! * [`compact_mst`] — a model of the non-silent compact MST algorithms
//!   ([Blin–Gradinariu–Rovedakis–Tixeuil DISC 2009], [Korman–Kutten–Masuzawa PODC 2011]):
//!   `O(log n)` bits per node, `O(n)`-round convergence, but a perpetually circulating
//!   verification token — the algorithm is never quiescent;
//! * [`prior_mdst`] — a model of the prior self-stabilizing MDST algorithm
//!   ([Blin–Gradinariu–Rovedakis 2011]): an (OPT + 1)-approximation that is not silent
//!   and stores explicit fragment-membership lists, i.e. `Ω(n log n)` bits per node.
//!
//! The models reproduce the *asymptotics* the paper cites (space per node, silence,
//! round order) — the quantities the experiments compare — while the trees they output
//! are computed with the exact sequential oracles so that quality comparisons are fair.

pub mod compact_mst;
pub mod naive_reset;
pub mod prior_mdst;

use stst_graph::Tree;

/// Common report produced by every baseline.
#[derive(Clone, Debug)]
pub struct BaselineReport {
    /// The spanning tree the baseline stabilizes on (or keeps re-verifying forever).
    pub tree: Tree,
    /// Rounds until the output tree is in place (for non-silent baselines, the
    /// verification keeps running after this point).
    pub rounds: u64,
    /// Maximum register size in bits per node.
    pub max_register_bits: usize,
    /// Whether the algorithm is silent (registers eventually stop changing).
    pub silent: bool,
}
