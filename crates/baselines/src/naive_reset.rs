//! A genuine guarded-rule spanning-tree construction that keeps only the distance half
//! of the proof labels.
//!
//! It is silent, compact (`O(log n)` bits) and correct as a *spanning tree*
//! construction, but without the size component the labeling is not malleable: any
//! in-place improvement of the tree would transiently violate the distance labels and
//! raise alarms, which is why the paper introduces the redundant scheme of §IV. This
//! baseline is the ablation arm of experiment E9.

use rand::rngs::StdRng;
use rand::Rng;

use stst_graph::{Graph, Ident, NodeId};
use stst_runtime::bits::{BitReader, BitWriter};
use stst_runtime::codec::FieldSpec;
use stst_runtime::{Algorithm, Codec, CodecCtx, ParentPointer, RawView, Screen, View};

/// Register: claimed root, parent pointer and distance only (no subtree size).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DistanceOnlyState {
    /// Identity of the claimed root.
    pub root: Ident,
    /// Identity of the parent neighbor, or `⊥`.
    pub parent: Option<Ident>,
    /// Claimed hop distance to the root.
    pub dist: u64,
}

impl Codec for DistanceOnlyState {
    fn encoded_bits(&self, ctx: &CodecCtx) -> usize {
        CodecCtx::uint_bits(self.root, ctx.ident_bits)
            + CodecCtx::opt_uint_bits(&self.parent, ctx.ident_bits)
            + CodecCtx::uint_bits(self.dist, ctx.count_bits)
    }

    fn encode_into(&self, ctx: &CodecCtx, w: &mut BitWriter<'_>) {
        CodecCtx::write_uint(w, self.root, ctx.ident_bits);
        CodecCtx::write_opt_uint(w, &self.parent, ctx.ident_bits);
        CodecCtx::write_uint(w, self.dist, ctx.count_bits);
    }

    fn decode_from(ctx: &CodecCtx, r: &mut BitReader<'_>) -> Self {
        DistanceOnlyState {
            root: CodecCtx::read_uint(r, ctx.ident_bits),
            parent: CodecCtx::read_opt_uint(r, ctx.ident_bits),
            dist: CodecCtx::read_uint(r, ctx.count_bits),
        }
    }

    fn field_specs(ctx: &CodecCtx) -> Vec<FieldSpec> {
        // Fault-free shape with the parent present: escape + root payload, presence +
        // escape + parent payload, escape + dist payload.
        let i = ctx.ident_bits;
        vec![
            FieldSpec {
                name: "root",
                offset: 1,
                width: i,
            },
            FieldSpec {
                name: "parent",
                offset: i + 3,
                width: i,
            },
            FieldSpec {
                name: "dist",
                offset: 2 * i + 4,
                width: ctx.count_bits,
            },
        ]
    }
}

impl ParentPointer for DistanceOnlyState {
    fn parent_ident(&self) -> Option<Ident> {
        self.parent
    }
}

/// The distance-only silent spanning-tree construction.
#[derive(Clone, Copy, Debug, Default)]
pub struct DistanceOnlySpanningTree;

impl Algorithm for DistanceOnlySpanningTree {
    type State = DistanceOnlyState;

    fn name(&self) -> &str {
        "distance-only spanning tree (ablation baseline)"
    }

    fn arbitrary_state(&self, graph: &Graph, _node: NodeId, rng: &mut StdRng) -> DistanceOnlyState {
        let n = graph.node_count() as u64;
        DistanceOnlyState {
            root: rng.gen_range(0..=2 * n.max(1)),
            parent: if rng.gen_bool(0.3) {
                None
            } else {
                Some(rng.gen_range(0..=2 * n.max(1)))
            },
            dist: rng.gen_range(0..=n + 1),
        }
    }

    fn step(&self, view: &View<'_, DistanceOnlyState>) -> Option<DistanceOnlyState> {
        let mut best: (Ident, u64, Option<Ident>) = (view.ident, 0, None);
        for nb in view.neighbors() {
            if nb.state.root < view.ident && nb.state.dist + 1 < view.n as u64 {
                let candidate = (nb.state.root, nb.state.dist + 1, Some(nb.ident));
                if candidate < best {
                    best = candidate;
                }
            }
        }
        let desired = DistanceOnlyState {
            root: best.0,
            parent: best.2,
            dist: best.1,
        };
        (desired != *view.state).then_some(desired)
    }

    /// Decode-free mirror of [`DistanceOnlySpanningTree::step`] over extracted fields;
    /// `Unknown` on any fired escape bit (the full-decode path owns fault garbage).
    fn guard_screen(&self, raw: &RawView<'_>) -> Screen<DistanceOnlyState> {
        let ctx = raw.ctx();
        let mut own = raw.own_reader();
        let Some(root) = own.uint(ctx.ident_bits) else {
            return Screen::Unknown;
        };
        let Some(parent) = own.opt_uint(ctx.ident_bits) else {
            return Screen::Unknown;
        };
        let Some(dist) = own.uint(ctx.count_bits) else {
            return Screen::Unknown;
        };
        let current = DistanceOnlyState { root, parent, dist };
        let n = raw.n as u64;
        let mut best: (Ident, u64, Option<Ident>) = (raw.ident, 0, None);
        for port in 0..raw.degree() {
            let mut r = raw.reader_of(port);
            let Some(nb_root) = r.uint(ctx.ident_bits) else {
                return Screen::Unknown;
            };
            if r.opt_uint(ctx.ident_bits).is_none() {
                return Screen::Unknown; // skip over the parent field
            }
            let Some(nb_dist) = r.uint(ctx.count_bits) else {
                return Screen::Unknown;
            };
            // Un-escaped ⇒ < 2^count_bits, so the +1 cannot wrap (same arithmetic as
            // `step` on the decoded value).
            if nb_root < raw.ident && nb_dist + 1 < n {
                let candidate = (nb_root, nb_dist + 1, Some(raw.neighbor(port).ident));
                if candidate < best {
                    best = candidate;
                }
            }
        }
        let desired = DistanceOnlyState {
            root: best.0,
            parent: best.2,
            dist: best.1,
        };
        if desired == current {
            Screen::Disabled
        } else {
            Screen::Enabled(desired)
        }
    }

    fn is_legal(&self, graph: &Graph, states: &[DistanceOnlyState]) -> bool {
        let Ok(tree) = stst_runtime::executor::parent_pointer_tree(graph, states) else {
            return false;
        };
        tree.root() == graph.min_ident_node()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stst_graph::generators;
    use stst_runtime::{Executor, ExecutorConfig};

    #[test]
    fn converges_silently_to_a_spanning_tree() {
        for seed in 0..3 {
            let g = generators::workload(24, 0.15, seed);
            let mut exec = Executor::from_arbitrary(
                &g,
                DistanceOnlySpanningTree,
                ExecutorConfig::seeded(seed),
            );
            let q = exec.run_to_quiescence(2_000_000).unwrap();
            assert!(q.silent && q.legal, "seed {seed}");
        }
    }

    #[test]
    fn field_extraction_matches_decoding_for_random_and_garbage_registers() {
        use rand::SeedableRng;
        use stst_runtime::codec::FieldReader;
        let g = generators::workload(24, 0.15, 3);
        let ctx = stst_runtime::CodecCtx::for_graph(&g);
        let mut rng = rand::rngs::StdRng::seed_from_u64(41);
        let mut states: Vec<DistanceOnlyState> = g
            .nodes()
            .map(|v| DistanceOnlySpanningTree.arbitrary_state(&g, v, &mut rng))
            .collect();
        states.push(DistanceOnlyState {
            root: u64::MAX, // escapes the ident field
            parent: None,
            dist: u64::MAX, // escapes the count field
        });
        let specs = DistanceOnlyState::field_specs(&ctx);
        assert_eq!(
            specs.iter().map(|s| s.name).collect::<Vec<_>>(),
            ["root", "parent", "dist"]
        );
        let ident_max = 1u64 << ctx.ident_bits;
        let count_max = 1u64 << ctx.count_bits;
        for state in &states {
            let mut words = Vec::new();
            let mut w = BitWriter::new(&mut words, 0);
            state.encode_into(&ctx, &mut w);
            let mut f = FieldReader::new(&words, 0);
            let root = f.uint(ctx.ident_bits);
            assert_eq!(
                root,
                (state.root < ident_max).then_some(state.root),
                "{state:?}"
            );
            let parent = f.opt_uint(ctx.ident_bits);
            if state.parent.is_some_and(|p| p >= ident_max) {
                assert_eq!(parent, None, "{state:?}");
            } else {
                assert_eq!(parent, Some(state.parent), "{state:?}");
            }
            let dist = f.uint(ctx.count_bits);
            assert_eq!(
                dist,
                (state.dist < count_max).then_some(state.dist),
                "{state:?}"
            );
            if let Some(p) = state.parent {
                if root.is_some() && parent == Some(state.parent) && dist.is_some() {
                    for (spec, value) in specs.iter().zip([state.root, p, state.dist]) {
                        let mut r = BitReader::new(&words, spec.offset as u64);
                        assert_eq!(
                            r.read(spec.width as usize),
                            value,
                            "{}: {state:?}",
                            spec.name
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn uses_fewer_bits_than_the_redundant_construction() {
        let g = generators::workload(64, 0.08, 1);
        let mut exec =
            Executor::from_arbitrary(&g, DistanceOnlySpanningTree, ExecutorConfig::seeded(1));
        exec.run_to_quiescence(2_000_000).unwrap();
        // Compare the stabilized register sizes (peaks include the arbitrary initial
        // garbage, which says nothing about the algorithms).
        let ours = exec.space_report().max_bits;
        let full = stst_core::mst::spanning_phase_register_bits(&g, 1);
        assert!(
            ours <= full,
            "distance-only registers ({ours}) exceed the redundant ones ({full})"
        );
    }
}
