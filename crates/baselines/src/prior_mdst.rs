//! Model of the prior self-stabilizing MDST algorithm the paper compares against
//! ([16] Blin–Gradinariu–Rovedakis, JPDC 2011): an (OPT + 1)-approximation that is not
//! silent and stores, at every node, explicit lists describing its fragment/subtree —
//! `Ω(n log n)` bits per node.
//!
//! The model measures the actual list sizes the cited algorithm would store (one
//! identity per node of the subtree rooted at the node, plus per-neighbor bookkeeping),
//! so the space comparison of experiment E7 is a measurement rather than a formula. The
//! output tree is computed with the exact Fürer–Raghavachari oracle so that degree
//! comparisons are fair.

use stst_graph::fr::furer_raghavachari;
use stst_graph::Graph;

use crate::BaselineReport;

/// Runs the modelled prior-art MDST algorithm.
///
/// # Panics
///
/// Panics if the graph is disconnected.
pub fn run(graph: &Graph) -> BaselineReport {
    let (tree, stats) = furer_raghavachari(graph);
    let n = graph.node_count() as u64;
    let ident_bits = graph.ident_bits();
    // Ω(n log n) bits: the node storing the largest subtree (the root) keeps one
    // identity per node of the graph, plus constant-size per-neighbor fields.
    let sizes = tree.subtree_sizes();
    let max_register_bits = sizes
        .iter()
        .map(|&s| s * ident_bits + graph.max_degree() * 4)
        .max()
        .unwrap_or(0);
    // The cited algorithm converges in O(mn² log n) moves; we report the round order n⁴
    // as the comparable coarse bound and keep the improvement count from the oracle.
    let rounds = n.saturating_pow(4).max(stats.improvements as u64);
    BaselineReport {
        tree,
        rounds,
        max_register_bits,
        silent: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stst_graph::fr::is_fr_tree;
    use stst_graph::generators;

    #[test]
    fn produces_a_low_degree_tree_but_with_linear_memory() {
        let g = generators::workload(40, 0.15, 3);
        let report = run(&g);
        assert!(is_fr_tree(&g, &report.tree));
        assert!(!report.silent);
        // The root stores ~n identities: at least n·⌈log₂ n⌉ / 2 bits.
        assert!(
            report.max_register_bits >= 40 * 6 / 2,
            "expected Ω(n log n) bits, got {}",
            report.max_register_bits
        );
    }

    #[test]
    fn memory_grows_linearly_with_n() {
        let small = run(&generators::workload(20, 0.2, 1)).max_register_bits;
        let large = run(&generators::workload(80, 0.08, 1)).max_register_bits;
        assert!(
            large >= 3 * small,
            "prior-art memory should grow ~linearly: {small} → {large}"
        );
    }
}
